package drift_test

import (
	"math"
	"sync"
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/drift"
	"github.com/hpc-repro/aiio/internal/faults"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/logdb"
)

// jobs generates n deterministic synthetic records.
func jobs(t testing.TB, n int, seed int64) []*darshan.Record {
	t.Helper()
	ds := logdb.Generate(logdb.GenConfig{Jobs: n, Seed: seed})
	if ds.Len() != n {
		t.Fatalf("generated %d jobs, want %d", ds.Len(), n)
	}
	return ds.Records
}

func TestPSIStableOnSameDistribution(t *testing.T) {
	ref := jobs(t, 500, 1)
	live := jobs(t, 500, 2) // same generator, different draw
	m := drift.New(drift.Config{MinSamples: 100})
	m.SetReference(drift.BuildReference(ref))
	for _, rec := range live {
		m.Observe(rec)
	}
	st := m.Snapshot()
	if !st.Armed {
		t.Fatal("monitor should be armed after SetReference")
	}
	if st.WindowJobs != len(live) {
		t.Fatalf("WindowJobs = %d, want %d", st.WindowJobs, len(live))
	}
	if st.MaxPSI >= 0.25 {
		t.Fatalf("same-distribution MaxPSI = %.4f, want < 0.25 (top: %+v)", st.MaxPSI, st.Top)
	}
	if st.Tripped {
		t.Fatalf("same-distribution snapshot tripped: %+v", st)
	}
}

func TestPSITripsOnDistributionShift(t *testing.T) {
	ref := jobs(t, 500, 1)
	shifted := faults.ShiftDataset(jobs(t, 300, 2), 1000, 1_000_000)
	m := drift.New(drift.Config{MinSamples: 100})
	m.SetReference(drift.BuildReference(ref))
	for _, rec := range shifted {
		m.Observe(rec)
	}
	tripped, st := m.Tripped()
	if !tripped {
		t.Fatalf("1000x shift did not trip (MaxPSI %.4f, window %d)", st.MaxPSI, st.WindowJobs)
	}
	if st.TrippedBy != "input-distribution" {
		t.Fatalf("TrippedBy = %q, want input-distribution", st.TrippedBy)
	}
	if len(st.Drifted) == 0 {
		t.Fatal("tripped status lists no drifted counters")
	}
	for i := 1; i < len(st.Drifted); i++ {
		if st.Drifted[i].PSI > st.Drifted[i-1].PSI {
			t.Fatalf("Drifted not sorted worst-first at %d: %+v", i, st.Drifted)
		}
	}
	if st.Drifted[0].PSI != st.MaxPSI {
		t.Fatalf("worst drifted counter PSI %.4f != MaxPSI %.4f", st.Drifted[0].PSI, st.MaxPSI)
	}
}

func TestPSINeedsMinSamples(t *testing.T) {
	ref := jobs(t, 500, 1)
	shifted := faults.ShiftDataset(jobs(t, 30, 2), 1000, 1_000_000)
	m := drift.New(drift.Config{MinSamples: 100})
	m.SetReference(drift.BuildReference(ref))
	for _, rec := range shifted {
		m.Observe(rec)
	}
	if tripped, st := m.Tripped(); tripped {
		t.Fatalf("tripped on %d jobs below MinSamples 100: %+v", st.WindowJobs, st)
	}
}

func TestErrorTrackerTrips(t *testing.T) {
	m := drift.New(drift.Config{MinErrors: 20})
	ref := drift.BuildReference(jobs(t, 200, 1))
	ref.BaselineRMSE = 0.1
	m.SetReference(ref)
	// Errors at exactly 2x the baseline RMSE: over the default 1.5 ratio.
	for i := 0; i < 25; i++ {
		m.ObserveError(0.2, 0)
	}
	tripped, st := m.Tripped()
	if !tripped || st.TrippedBy != "prediction-error" {
		t.Fatalf("error spike did not trip (tripped=%v by=%q ratio=%.2f obs=%d)",
			tripped, st.TrippedBy, st.ErrorRatio, st.ErrorObs)
	}
	if math.Abs(st.RollingRMSE-0.2) > 1e-9 {
		t.Fatalf("RollingRMSE = %.6f, want 0.2", st.RollingRMSE)
	}
	// ResetErrors (promotion/rollback) clears the trip.
	m.ResetErrors()
	if tripped, st := m.Tripped(); tripped {
		t.Fatalf("still tripped after ResetErrors: %+v", st)
	}
}

func TestErrorTrackerIgnoresNonFinite(t *testing.T) {
	m := drift.New(drift.Config{})
	m.ObserveError(math.NaN(), 0)
	m.ObserveError(math.Inf(1), 0)
	m.ObserveError(0, math.Inf(-1))
	if _, n := m.RollingRMSE(); n != 0 {
		t.Fatalf("non-finite errors were recorded: n=%d", n)
	}
}

func TestSelfArmThenTrip(t *testing.T) {
	m := drift.New(drift.Config{MinSamples: 50, SelfArm: 100})
	normal := jobs(t, 100, 1)
	for _, rec := range normal {
		m.Observe(rec)
	}
	st := m.Snapshot()
	if !st.Armed {
		t.Fatalf("monitor did not self-arm after %d jobs", len(normal))
	}
	if st.ReferenceJobs != 100 {
		t.Fatalf("self-armed ReferenceJobs = %d, want 100", st.ReferenceJobs)
	}
	if st.WindowJobs != 0 {
		t.Fatalf("self-arm should reset the live window, WindowJobs = %d", st.WindowJobs)
	}
	for _, rec := range faults.ShiftDataset(jobs(t, 60, 2), 1000, 1_000_000) {
		m.Observe(rec)
	}
	if tripped, st := m.Tripped(); !tripped || st.TrippedBy != "input-distribution" {
		t.Fatalf("shift after self-arm did not trip: %+v", st)
	}
}

func TestWindowRotationAgesOutOldTraffic(t *testing.T) {
	ref := jobs(t, 200, 1)
	// A 100-job window against a 200-job reference carries sampling noise
	// worth ~0.2-0.3 PSI on the noisiest counter; 0.5 separates the real
	// 1000x shift (PSI >> 1) from that noise.
	m := drift.New(drift.Config{MinSamples: 50, Window: 100, PSIThreshold: 0.5})
	m.SetReference(drift.BuildReference(ref))
	// A burst of shifted traffic trips the monitor...
	for _, rec := range faults.ShiftDataset(jobs(t, 100, 2), 1000, 1_000_000) {
		m.Observe(rec)
	}
	if tripped, _ := m.Tripped(); !tripped {
		t.Fatal("shifted burst did not trip")
	}
	// ...then two full windows of normal traffic age the burst out.
	for _, rec := range jobs(t, 200, 3) {
		m.Observe(rec)
	}
	st := m.Snapshot()
	if st.WindowJobs > 200 {
		t.Fatalf("rotating window holds %d jobs, want <= 2x Window", st.WindowJobs)
	}
	if st.Tripped {
		t.Fatalf("monitor still tripped after burst aged out: MaxPSI %.4f", st.MaxPSI)
	}
}

func TestReferenceRoundTrip(t *testing.T) {
	ref := drift.BuildReference(jobs(t, 100, 1))
	ref.BaselineRMSE = 0.42
	data, err := ref.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := drift.ParseReference(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Jobs != ref.Jobs || back.BaselineRMSE != ref.BaselineRMSE {
		t.Fatalf("round trip lost scalars: %+v vs %+v", back.Jobs, ref.Jobs)
	}
	if back.Counters != ref.Counters {
		t.Fatal("round trip lost histogram bins")
	}
	if _, err := drift.ParseReference([]byte("{")); err == nil {
		t.Fatal("truncated reference parsed without error")
	}
}

func TestMonitorConcurrentUse(t *testing.T) {
	m := drift.New(drift.Config{MinSamples: 50, Window: 100, SelfArm: 60})
	recs := jobs(t, 200, 1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, rec := range recs {
				m.Observe(rec)
				m.ObserveError(features.Transform(rec.PerfMiBps), 0.5)
				if i%17 == 0 {
					m.Snapshot()
				}
				if i%43 == 0 {
					m.ResetErrors()
				}
			}
		}(w)
	}
	wg.Wait()
	st := m.Snapshot()
	if !st.Armed {
		t.Fatal("monitor never armed under concurrency")
	}
}
