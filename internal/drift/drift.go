// Package drift watches a serving model's world change. The paper's
// ensemble is trained once, but a long-lived telemetry sink keeps serving
// as its input distribution shifts — stale models degrade silently long
// before anyone notices. This package provides the detection half of the
// self-healing lifecycle (DESIGN.md §14):
//
//   - bounded-memory per-counter input-distribution sketches over ingested
//     jobs, compared by Population Stability Index (PSI) against a
//     reference snapshot frozen at the serving generation's training time;
//   - a rolling prediction-error tracker over labeled jobs (every ingested
//     record carries its measured PerfMiBps, so serving error is free);
//   - a canary gate (canary.go) that shadow-evaluates a freshly retrained
//     ensemble against the serving one on held-out jobs before promotion.
//
// Everything is fixed-size: a Reference is 45 counters × NumBins uint64
// bins, the live window is two such sets rotated in place, and the error
// tracker is one ring buffer. Monitoring a million-job stream costs the
// same memory as monitoring a hundred.
package drift

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
)

// NumBins is the fixed per-counter histogram width. Counters are compared
// in the model's own feature space — log10(x+1), Eq. 2 — where real
// Darshan counters live in roughly [0, 12): bin 0 holds exact zeros
// (sparsity is a first-class signal: most counters are zero for most
// jobs, and a sparsity shift is drift), bins 1..24 are half-decade slices
// of (0, 12), and bin 25 is the overflow.
const NumBins = 26

// bucket maps one raw counter value to its bin.
func bucket(v float64) int {
	t := features.Transform(features.Sanitize(v))
	if t <= 0 {
		return 0
	}
	b := 1 + int(t*2)
	if b >= NumBins {
		return NumBins - 1
	}
	return b
}

// Hist is one counter's fixed-width histogram.
type Hist [NumBins]uint64

// Reference is the distribution snapshot frozen at a generation's training
// time and persisted alongside it in the model store, so a restart re-arms
// the monitor with exactly the world the serving models were fitted to.
type Reference struct {
	// Jobs is how many records built the snapshot.
	Jobs int `json:"jobs"`
	// Counters holds one histogram per Darshan counter, schema order.
	Counters [darshan.NumCounters]Hist `json:"counters"`
	// BaselineRMSE is the candidate's held-out RMSE (transformed domain) at
	// training time — the error level the post-promotion watch compares
	// rolling serving error against.
	BaselineRMSE float64 `json:"baseline_rmse,omitempty"`
}

// BuildReference sketches recs into a snapshot.
func BuildReference(recs []*darshan.Record) *Reference {
	ref := &Reference{Jobs: len(recs)}
	for _, rec := range recs {
		for j, v := range rec.Counters {
			ref.Counters[j][bucket(v)]++
		}
	}
	return ref
}

// Marshal serializes the snapshot for the model store sidecar.
func (r *Reference) Marshal() ([]byte, error) { return json.Marshal(r) }

// ParseReference is Marshal's inverse.
func ParseReference(data []byte) (*Reference, error) {
	var r Reference
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("drift: parse reference: %w", err)
	}
	return &r, nil
}

// psi computes the Population Stability Index between a reference and a
// live histogram: Σ (p−q)·ln(p/q) over bins, with Laplace smoothing so an
// empty bin on either side contributes a finite surprise instead of ±Inf.
// The conventional reading: < 0.1 stable, 0.1–0.25 moderate shift, > 0.25
// the population has moved.
func psi(ref, live *Hist) float64 {
	var refN, liveN float64
	for b := 0; b < NumBins; b++ {
		refN += float64(ref[b])
		liveN += float64(live[b])
	}
	if refN == 0 || liveN == 0 {
		return 0
	}
	const eps = 0.5
	sum := 0.0
	for b := 0; b < NumBins; b++ {
		p := (float64(ref[b]) + eps) / (refN + eps*NumBins)
		q := (float64(live[b]) + eps) / (liveN + eps*NumBins)
		sum += (q - p) * math.Log(q/p)
	}
	return sum
}

// Config tunes a Monitor. Zero values take the documented defaults.
type Config struct {
	// PSIThreshold is the per-counter PSI at which the input distribution
	// counts as drifted (default 0.25; negative disables input tripping).
	PSIThreshold float64
	// MinSamples is how many live jobs the window must hold before PSI is
	// trusted (default 200) — a handful of odd jobs is noise, not drift.
	MinSamples int
	// Window is the live-window rotation size (default 2000): the monitor
	// keeps the current and previous buckets, so PSI always reflects the
	// most recent Window..2×Window jobs and old traffic ages out.
	Window int
	// ErrorWindow is the rolling prediction-error ring size (default 256).
	ErrorWindow int
	// ErrorRatio is the rolling-RMSE / baseline-RMSE ratio at which
	// prediction error counts as drifted (default 1.5; negative disables).
	ErrorRatio float64
	// MinErrors is how many labeled predictions the ring must hold before
	// the error ratio is trusted (default 50).
	MinErrors int
	// SelfArm: a monitor with no persisted reference (legacy generation,
	// first boot) freezes its own first SelfArm observations as the
	// reference instead of staying blind forever (default 2×MinSamples;
	// negative disables).
	SelfArm int
}

func (c Config) withDefaults() Config {
	if c.PSIThreshold == 0 {
		c.PSIThreshold = 0.25
	}
	if c.MinSamples == 0 {
		c.MinSamples = 200
	}
	if c.Window == 0 {
		c.Window = 2000
	}
	if c.ErrorWindow == 0 {
		c.ErrorWindow = 256
	}
	if c.ErrorRatio == 0 {
		c.ErrorRatio = 1.5
	}
	if c.MinErrors == 0 {
		c.MinErrors = 50
	}
	if c.SelfArm == 0 {
		c.SelfArm = 2 * c.MinSamples
	}
	return c
}

// Monitor is the streaming drift detector. All methods are safe for
// concurrent use; Observe and ObserveError are O(counters) and O(1) with
// no allocation, cheap enough for every ingested record.
type Monitor struct {
	mu  sync.Mutex
	cfg Config

	ref *Reference

	// Two-bucket rotating live window: cur fills to cfg.Window, then
	// becomes prev. PSI runs over prev+cur, so the comparison set always
	// covers the last Window..2×Window jobs in constant memory.
	cur, prev   [darshan.NumCounters]Hist
	curN, prevN int

	// Rolling squared-error ring over labeled predictions.
	errs  []float64
	errN  int // total ever observed (ring head = errN % len)
	armed bool
}

// New returns a monitor with cfg (zero fields defaulted) and no reference
// armed yet.
func New(cfg Config) *Monitor {
	c := cfg.withDefaults()
	return &Monitor{cfg: c, errs: make([]float64, c.ErrorWindow)}
}

// SetReference arms (or re-arms) the monitor against a snapshot and resets
// the live window — after a promotion or rollback the world starts over
// relative to the newly serving generation. A nil ref disarms.
func (m *Monitor) SetReference(ref *Reference) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ref = ref
	m.armed = ref != nil
	m.resetWindowLocked()
}

func (m *Monitor) resetWindowLocked() {
	m.cur = [darshan.NumCounters]Hist{}
	m.prev = [darshan.NumCounters]Hist{}
	m.curN, m.prevN = 0, 0
}

// ResetErrors clears the rolling error ring (promotion and rollback do
// this so the watch judges only the newly serving generation's errors).
func (m *Monitor) ResetErrors() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.errN = 0
}

// Observe feeds one ingested record's counters into the live window.
func (m *Monitor) Observe(rec *darshan.Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for j, v := range rec.Counters {
		m.cur[j][bucket(v)]++
	}
	m.curN++
	// Self-arm: with no persisted reference, freeze the first SelfArm jobs
	// as the baseline so drift relative to "what this deployment first
	// saw" is still detectable.
	if !m.armed && m.cfg.SelfArm > 0 && m.curN >= m.cfg.SelfArm {
		ref := &Reference{Jobs: m.curN}
		ref.Counters = m.cur
		m.ref = ref
		m.armed = true
		m.resetWindowLocked()
		return
	}
	if m.curN >= m.cfg.Window {
		m.prev = m.cur
		m.prevN = m.curN
		m.cur = [darshan.NumCounters]Hist{}
		m.curN = 0
	}
}

// ObserveError feeds one labeled job's prediction error (both values in
// the transformed log10(x+1) domain).
func (m *Monitor) ObserveError(predicted, actual float64) {
	d := predicted - actual
	if math.IsNaN(d) || math.IsInf(d, 0) {
		// A non-finite prediction is a model fault, not a drift sample;
		// the circuit breakers own that failure mode.
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.errs[m.errN%len(m.errs)] = d * d
	m.errN++
}

// RollingRMSE returns the root-mean-square of the error ring and how many
// labeled jobs it currently covers.
func (m *Monitor) RollingRMSE() (rmse float64, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rollingLocked()
}

func (m *Monitor) rollingLocked() (float64, int) {
	n := m.errN
	if n > len(m.errs) {
		n = len(m.errs)
	}
	if n == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, sq := range m.errs[:n] {
		sum += sq
	}
	return math.Sqrt(sum / float64(n)), n
}

// CounterDrift is one counter's PSI against the reference.
type CounterDrift struct {
	Counter string  `json:"counter"`
	PSI     float64 `json:"psi"`
}

// Status is a point-in-time drift report — the /api/v1/drift body and the
// healthz "drift" section.
type Status struct {
	// Armed is true once a reference snapshot is loaded (persisted with
	// the generation, or self-armed from early traffic).
	Armed bool `json:"armed"`
	// ReferenceJobs / WindowJobs size the two populations under comparison.
	ReferenceJobs int `json:"reference_jobs"`
	WindowJobs    int `json:"window_jobs"`
	// MaxPSI is the worst per-counter PSI; Threshold is the trip level.
	MaxPSI    float64 `json:"max_psi"`
	Threshold float64 `json:"threshold"`
	// Drifted lists every counter over the threshold, worst first — the
	// "which counters drifted" provenance that flows into advisories.
	Drifted []CounterDrift `json:"drifted,omitempty"`
	// Top lists the worst counters regardless of threshold (at most 5).
	Top []CounterDrift `json:"top,omitempty"`
	// Rolling prediction-error state.
	RollingRMSE  float64 `json:"rolling_rmse"`
	BaselineRMSE float64 `json:"baseline_rmse"`
	ErrorRatio   float64 `json:"error_ratio"`
	ErrorObs     int     `json:"error_obs"`
	// Tripped is true when either detector is over its threshold with
	// enough samples; TrippedBy names the detector.
	Tripped   bool   `json:"tripped"`
	TrippedBy string `json:"tripped_by,omitempty"`
}

// Snapshot computes the current drift status. O(counters × bins); cheap
// enough for every healthz poll.
func (m *Monitor) Snapshot() *Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := &Status{
		Armed:      m.armed,
		WindowJobs: m.curN + m.prevN,
		Threshold:  m.cfg.PSIThreshold,
	}
	if m.ref != nil {
		st.ReferenceJobs = m.ref.Jobs
		st.BaselineRMSE = m.ref.BaselineRMSE
	}
	all := make([]CounterDrift, 0, darshan.NumCounters)
	if m.armed && st.WindowJobs > 0 {
		var live Hist
		for j := 0; j < int(darshan.NumCounters); j++ {
			for b := 0; b < NumBins; b++ {
				live[b] = m.cur[j][b] + m.prev[j][b]
			}
			p := psi(&m.ref.Counters[j], &live)
			all = append(all, CounterDrift{Counter: darshan.CounterID(j).String(), PSI: p})
			if p > st.MaxPSI {
				st.MaxPSI = p
			}
		}
		sort.Slice(all, func(i, k int) bool { return all[i].PSI > all[k].PSI })
		for _, cd := range all {
			if m.cfg.PSIThreshold > 0 && cd.PSI >= m.cfg.PSIThreshold {
				st.Drifted = append(st.Drifted, cd)
			}
		}
		top := len(all)
		if top > 5 {
			top = 5
		}
		st.Top = append(st.Top, all[:top]...)
	}
	rmse, n := m.rollingLocked()
	st.RollingRMSE, st.ErrorObs = rmse, n
	if st.BaselineRMSE > 0 && rmse > 0 {
		st.ErrorRatio = rmse / st.BaselineRMSE
	}
	if m.cfg.PSIThreshold > 0 && len(st.Drifted) > 0 && st.WindowJobs >= m.cfg.MinSamples {
		st.Tripped = true
		st.TrippedBy = "input-distribution"
	} else if m.cfg.ErrorRatio > 0 && st.BaselineRMSE > 0 &&
		n >= m.cfg.MinErrors && st.ErrorRatio >= m.cfg.ErrorRatio {
		st.Tripped = true
		st.TrippedBy = "prediction-error"
	}
	return st
}

// Tripped reports whether a drift threshold is over its trip level with
// enough samples to trust, along with the full status for provenance.
func (m *Monitor) Tripped() (bool, *Status) {
	st := m.Snapshot()
	return st.Tripped, st
}
