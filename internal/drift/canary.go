package drift

import (
	"fmt"
	"math"
	"time"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
)

// The canary gate: a freshly retrained ensemble is never promoted blindly.
// Before RunIncremental commits a generation, the gate shadow-evaluates
// the candidate against the currently serving ensemble on a held-out slice
// of recent labeled jobs (records the candidate did NOT train on — see
// IncrementalOptions.Holdout) and admits it only if it beats, or is within
// Tolerance of, the serving error. A retrain poisoned by bad labels fits
// the poison and fails the clean holdout; the gate blocks it and the old
// generation keeps serving.

// GateConfig tunes the canary comparison.
type GateConfig struct {
	// Tolerance is how much worse (fractionally) the candidate's holdout
	// RMSE may be than the serving ensemble's and still promote (default
	// 0.10: retrains on fresh-but-similar data jitter a few percent, and
	// blocking those forever would freeze the fleet on a stale model).
	Tolerance float64
	// MinHoldout is the smallest holdout the verdict is trusted on
	// (default 20). A smaller slice waives the gate — availability over
	// strictness; the post-promotion watch still guards the promotion.
	MinHoldout int
}

func (c GateConfig) withDefaults() GateConfig {
	if c.Tolerance == 0 {
		c.Tolerance = 0.10
	}
	if c.MinHoldout == 0 {
		c.MinHoldout = 20
	}
	return c
}

// Gate builds a RunIncremental gate closure. serving returns the ensemble
// currently answering traffic (nil when nothing serves yet — the first
// generation has no incumbent to beat and passes trivially).
func Gate(cfg GateConfig, serving func() *core.Ensemble) func(cand *core.Ensemble, holdout []*darshan.Record) (*core.CanaryRecord, error) {
	cfg = cfg.withDefaults()
	return func(cand *core.Ensemble, holdout []*darshan.Record) (*core.CanaryRecord, error) {
		v := &core.CanaryRecord{
			Tolerance:     cfg.Tolerance,
			HoldoutJobs:   len(holdout),
			EvaluatedUnix: time.Now().Unix(),
		}
		inc := serving()
		if inc == nil || len(inc.Models) == 0 {
			v.Passed = true
			v.Reason = "no serving ensemble to beat; gate waived"
			return v, nil
		}
		if len(holdout) < cfg.MinHoldout {
			v.Passed = true
			v.Reason = fmt.Sprintf("holdout %d below minimum %d; gate waived (post-promotion watch still guards)",
				len(holdout), cfg.MinHoldout)
			return v, nil
		}
		v.CandidateRMSE = EvalRMSE(cand, holdout)
		v.ServingRMSE = EvalRMSE(inc, holdout)
		if math.IsInf(v.CandidateRMSE, 1) {
			v.Reason = "candidate produced non-finite holdout predictions"
			return v, fmt.Errorf("drift: canary: %s", v.Reason)
		}
		// A serving ensemble that itself fails the holdout can only be
		// improved on; any finite candidate passes.
		if math.IsInf(v.ServingRMSE, 1) || v.CandidateRMSE <= v.ServingRMSE*(1+cfg.Tolerance) {
			v.Passed = true
			v.Reason = fmt.Sprintf("candidate RMSE %.4f vs serving %.4f on %d held-out jobs (tolerance %.0f%%)",
				v.CandidateRMSE, v.ServingRMSE, len(holdout), cfg.Tolerance*100)
			return v, nil
		}
		v.Reason = fmt.Sprintf("candidate RMSE %.4f exceeds serving %.4f by more than %.0f%% on %d held-out jobs",
			v.CandidateRMSE, v.ServingRMSE, cfg.Tolerance*100, len(holdout))
		return v, fmt.Errorf("drift: canary: %s", v.Reason)
	}
}

// EvalRMSE measures an ensemble's mean-prediction RMSE over recs in the
// transformed domain (the Average Method merge, Eq. 7, without the SHAP
// work). A model that panics or returns a non-finite value poisons the
// whole evaluation to +Inf — exactly the candidate the gate must refuse.
func EvalRMSE(e *core.Ensemble, recs []*darshan.Record) (rmse float64) {
	defer func() {
		if r := recover(); r != nil {
			rmse = math.Inf(1)
		}
	}()
	if e == nil || len(e.Models) == 0 || len(recs) == 0 {
		return math.Inf(1)
	}
	frame := features.Build(&darshan.Dataset{Records: recs})
	mean := make([]float64, frame.Len())
	for _, m := range e.Models {
		pred := m.PredictBatch(frame.X)
		for i, p := range pred {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				return math.Inf(1)
			}
			mean[i] += p
		}
	}
	var sum float64
	inv := 1 / float64(len(e.Models))
	for i, p := range mean {
		d := p*inv - frame.Y[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(recs)))
}
