package drift_test

import (
	"math"
	"strings"
	"testing"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/drift"
	"github.com/hpc-repro/aiio/internal/faults"
	"github.com/hpc-repro/aiio/internal/features"
)

// flatJobs builds n records with identical performance, so a constant
// model predicting the transformed tag scores RMSE 0 and every deviation
// from it is exactly measurable.
func flatJobs(n int, perf float64) []*darshan.Record {
	recs := make([]*darshan.Record, n)
	for i := range recs {
		recs[i] = &darshan.Record{JobID: int64(i + 1), App: "canary", Year: 2020, PerfMiBps: perf}
	}
	return recs
}

func constEnsemble(v float64) *core.Ensemble {
	return &core.Ensemble{Models: []core.Model{&faults.ConstantModel{Value: v}}}
}

func TestGateWaivedWithoutIncumbent(t *testing.T) {
	gate := drift.Gate(drift.GateConfig{}, func() *core.Ensemble { return nil })
	v, err := gate(constEnsemble(1), flatJobs(100, 50))
	if err != nil || !v.Passed {
		t.Fatalf("first-generation gate should waive: v=%+v err=%v", v, err)
	}
	if !strings.Contains(v.Reason, "waived") {
		t.Fatalf("waiver reason missing: %q", v.Reason)
	}
}

func TestGateWaivedOnSmallHoldout(t *testing.T) {
	serving := constEnsemble(features.Transform(50))
	gate := drift.Gate(drift.GateConfig{MinHoldout: 20}, func() *core.Ensemble { return serving })
	// A terrible candidate still passes on 5 held-out jobs: too few to judge.
	v, err := gate(constEnsemble(99), flatJobs(5, 50))
	if err != nil || !v.Passed {
		t.Fatalf("small-holdout gate should waive: v=%+v err=%v", v, err)
	}
	if v.HoldoutJobs != 5 {
		t.Fatalf("HoldoutJobs = %d, want 5", v.HoldoutJobs)
	}
}

func TestGateBlocksWorseCandidate(t *testing.T) {
	y := features.Transform(50)
	serving := constEnsemble(y) // RMSE 0 on the holdout
	gate := drift.Gate(drift.GateConfig{}, func() *core.Ensemble { return serving })
	v, err := gate(constEnsemble(y+3), flatJobs(100, 50))
	if err == nil || v.Passed {
		t.Fatalf("gate admitted a candidate 3.0 RMSE worse than a perfect incumbent: %+v", v)
	}
	if math.Abs(v.CandidateRMSE-3) > 1e-9 || v.ServingRMSE != 0 {
		t.Fatalf("verdict RMSEs wrong: cand %.4f serving %.4f", v.CandidateRMSE, v.ServingRMSE)
	}
}

func TestGateAdmitsEquivalentCandidate(t *testing.T) {
	y := features.Transform(50)
	serving := constEnsemble(y + 0.5) // incumbent is off by 0.5
	gate := drift.Gate(drift.GateConfig{}, func() *core.Ensemble { return serving })
	// Candidate off by 0.52: within the 10% tolerance of 0.5.
	v, err := gate(constEnsemble(y+0.52), flatJobs(100, 50))
	if err != nil || !v.Passed {
		t.Fatalf("gate blocked a candidate within tolerance: v=%+v err=%v", v, err)
	}
	// Candidate off by 0.6: 20% worse, over tolerance.
	v, err = gate(constEnsemble(y+0.6), flatJobs(100, 50))
	if err == nil || v.Passed {
		t.Fatalf("gate admitted a candidate 20%% worse: %+v", v)
	}
}

func TestGateBlocksNonFiniteCandidate(t *testing.T) {
	serving := constEnsemble(features.Transform(50))
	gate := drift.Gate(drift.GateConfig{}, func() *core.Ensemble { return serving })
	v, err := gate(constEnsemble(math.NaN()), flatJobs(100, 50))
	if err == nil || v.Passed {
		t.Fatalf("gate admitted a NaN candidate: %+v", v)
	}
	v, err = gate(&core.Ensemble{Models: []core.Model{&faults.FaultyModel{
		Model: &faults.ConstantModel{Value: 1}, PanicOn: true,
	}}}, flatJobs(100, 50))
	if err == nil || v.Passed {
		t.Fatalf("gate admitted a panicking candidate: %+v", v)
	}
}

func TestGateAdmitsOverBrokenIncumbent(t *testing.T) {
	// A serving ensemble that cannot score the holdout (NaN) can only be
	// improved on: any finite candidate passes.
	serving := constEnsemble(math.NaN())
	gate := drift.Gate(drift.GateConfig{}, func() *core.Ensemble { return serving })
	v, err := gate(constEnsemble(features.Transform(50)+2), flatJobs(100, 50))
	if err != nil || !v.Passed {
		t.Fatalf("gate blocked the only finite option: v=%+v err=%v", v, err)
	}
}

func TestEvalRMSEEdgeCases(t *testing.T) {
	if r := drift.EvalRMSE(nil, flatJobs(5, 50)); !math.IsInf(r, 1) {
		t.Fatalf("nil ensemble RMSE = %v, want +Inf", r)
	}
	if r := drift.EvalRMSE(constEnsemble(1), nil); !math.IsInf(r, 1) {
		t.Fatalf("empty holdout RMSE = %v, want +Inf", r)
	}
	y := features.Transform(50)
	if r := drift.EvalRMSE(constEnsemble(y), flatJobs(10, 50)); r != 0 {
		t.Fatalf("perfect constant RMSE = %v, want 0", r)
	}
}
