// Package classify implements the paper's named future-work direction
// (Section 5): viewing I/O bottleneck diagnosis as a classification problem.
// A synthetic dataset with accurately tagged bottlenecks — each job is
// generated with one injected root cause — trains a one-vs-rest gradient-
// boosted classifier, and recall and precision for the diagnosis become
// measurable, exactly as the paper anticipates.
//
// The package also maps AIIO's regression+SHAP diagnosis onto the same
// class space (via the flagged counter) so the two formulations can be
// compared on the tagged data.
package classify

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/gbdt"
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/linalg"
	"github.com/hpc-repro/aiio/internal/workload"
)

// Class is a tagged bottleneck root cause.
type Class int

// The class space: the paper's Section 4.1 pattern families plus the
// metadata bottleneck and a well-tuned "none" class.
const (
	ClassNone Class = iota
	ClassSmallSyncWrites
	ClassSmallReads
	ClassExcessiveSeeks
	ClassStridedAccess
	ClassRandomAccess
	ClassMetadataLoad

	NumClasses
)

var classNames = [NumClasses]string{
	"none",
	"small-sync-writes",
	"small-reads",
	"excessive-seeks",
	"strided-access",
	"random-access",
	"metadata-load",
}

// String names the class.
func (c Class) String() string {
	if c < 0 || c >= NumClasses {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// ClassOfCounter maps a flagged bottleneck counter to the class whose
// mechanism it signals; used to project AIIO's SHAP diagnosis onto the
// class space.
func ClassOfCounter(id darshan.CounterID) Class {
	switch id {
	case darshan.PosixSizeWrite0_100, darshan.PosixSizeWrite100_1K,
		darshan.PosixSizeWrite1K_10K, darshan.PosixWrites,
		darshan.PosixConsecWrites, darshan.PosixSeqWrites:
		return ClassSmallSyncWrites
	case darshan.PosixSizeRead0_100, darshan.PosixSizeRead100_1K,
		darshan.PosixSizeRead1K_10K, darshan.PosixReads,
		darshan.PosixConsecReads, darshan.PosixSeqReads:
		return ClassSmallReads
	case darshan.PosixSeeks:
		return ClassExcessiveSeeks
	case darshan.PosixStride1Stride, darshan.PosixStride2Stride,
		darshan.PosixStride3Stride, darshan.PosixStride4Stride,
		darshan.PosixStride1Count, darshan.PosixStride2Count,
		darshan.PosixStride3Count, darshan.PosixStride4Count:
		return ClassStridedAccess
	case darshan.PosixFileNotAligned, darshan.PosixMemNotAligned,
		darshan.PosixRWSwitches:
		return ClassRandomAccess
	case darshan.PosixOpens, darshan.PosixStats:
		return ClassMetadataLoad
	}
	return ClassNone
}

// Labeled is a tagged dataset: one class per frame row.
type Labeled struct {
	Frame  *features.Frame
	Labels []Class
}

// Generate produces n tagged jobs by injecting one known bottleneck per
// job: the generator families are the Section 4.1 patterns plus a
// metadata-heavy reader and well-tuned baselines.
func Generate(n int, seed int64, params iosim.Params) *Labeled {
	ds := &darshan.Dataset{}
	labels := make([]Class, 0, n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		class := Class(rng.Intn(int(NumClasses)))
		rec := generateClass(class, rng, params)
		rec.JobID = int64(i + 1)
		ds.Append(rec)
		labels = append(labels, class)
	}
	return &Labeled{Frame: features.Build(ds), Labels: labels}
}

func generateClass(class Class, rng *rand.Rand, params iosim.Params) *darshan.Record {
	cfg := workload.DefaultIOR()
	cfg.NProcs = 2 << rng.Intn(4) // 2..16
	cfg.FS = iosim.FSConfig{StripeSize: 1 * iosim.MiB, StripeWidth: 1 + rng.Intn(4)}
	seed := rng.Int63()
	transfers := int64(64 << rng.Intn(3))

	switch class {
	case ClassNone:
		cfg.TransferSize = int64(1<<20) << rng.Intn(2) // 1-2 MiB
		cfg.BlockSize = cfg.TransferSize * transfers / 8
		if rng.Intn(2) == 0 {
			cfg.Write = true
		} else {
			cfg.Read = true
			cfg.SeekPerRead = false
		}
	case ClassSmallSyncWrites:
		cfg.Write = true
		cfg.TransferSize = int64(256) << rng.Intn(3) // 256B-1KiB
		cfg.BlockSize = cfg.TransferSize * transfers
		cfg.FsyncPerWrite = true
	case ClassSmallReads:
		cfg.Read = true
		cfg.TransferSize = int64(256) << rng.Intn(3)
		cfg.BlockSize = cfg.TransferSize * transfers
		cfg.SeekPerRead = false
	case ClassExcessiveSeeks:
		cfg.Read = true
		cfg.TransferSize = int64(4096) << rng.Intn(3)
		cfg.BlockSize = cfg.TransferSize * transfers
		cfg.SeekPerRead = true
	case ClassStridedAccess:
		cfg.Write = rng.Intn(2) == 0
		cfg.Read = !cfg.Write
		cfg.TransferSize = int64(1024) << rng.Intn(2)
		cfg.BlockSize = cfg.TransferSize
		cfg.Segments = int(transfers)
		cfg.FsyncPerWrite = cfg.Write
	case ClassRandomAccess:
		cfg.Write = rng.Intn(2) == 0
		cfg.Read = !cfg.Write
		cfg.TransferSize = int64(1024) << rng.Intn(2)
		cfg.BlockSize = cfg.TransferSize * transfers
		cfg.RandomOffset = true
		cfg.FsyncPerWrite = cfg.Write
	case ClassMetadataLoad:
		// Many tiny files: open/stat dominated.
		nprocs := cfg.NProcs
		files := 64 << rng.Intn(3)
		job := iosim.Job{
			Name: "tagged-metadata", NProcs: nprocs, FS: cfg.FS, Seed: seed,
			Gen: func(rank int, emit func(darshan.Op)) {
				for f := 0; f < files; f++ {
					file := int32(f)
					emit(darshan.Op{Kind: darshan.OpStat, File: file})
					emit(darshan.Op{Kind: darshan.OpOpen, File: file})
					emit(darshan.Op{Kind: darshan.OpRead, File: file, Offset: 0, Size: 16 * iosim.KiB})
					emit(darshan.Op{Kind: darshan.OpClose, File: file})
				}
			},
		}
		rec, _ := iosim.Run(job, params)
		rec.App = "tagged-metadata"
		return rec
	}
	rec, _ := cfg.Run("tagged-ior", 0, seed, params)
	return rec
}

// Config tunes classifier training.
type Config struct {
	Rounds       int
	LearningRate float64
	MaxDepth     int
	Seed         int64
}

// DefaultConfig returns small-but-solid settings.
func DefaultConfig() Config {
	return Config{Rounds: 80, LearningRate: 0.15, MaxDepth: 5, Seed: 1}
}

// Classifier is a one-vs-rest gradient-boosted classifier over the 45
// counters.
type Classifier struct {
	Models []*gbdt.Model // one score model per class
}

// Train fits one binary regressor per class (one-vs-rest with squared loss
// on ±targets, the classic GBDT reduction).
func Train(data *Labeled, cfg Config) (*Classifier, error) {
	if data.Frame.Len() == 0 {
		return nil, fmt.Errorf("classify: empty dataset")
	}
	if data.Frame.Len() != len(data.Labels) {
		return nil, fmt.Errorf("classify: %d rows vs %d labels", data.Frame.Len(), len(data.Labels))
	}
	c := &Classifier{}
	for class := Class(0); class < NumClasses; class++ {
		y := make([]float64, len(data.Labels))
		for i, l := range data.Labels {
			if l == class {
				y[i] = 1
			}
		}
		gcfg := gbdt.DefaultConfig(gbdt.LeafWise)
		gcfg.Rounds = cfg.Rounds
		gcfg.LearningRate = cfg.LearningRate
		gcfg.MaxDepth = cfg.MaxDepth
		gcfg.Seed = cfg.Seed + int64(class)
		gcfg.EarlyStoppingRounds = 0
		m, err := gbdt.Train(gcfg, data.Frame.X, y, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("classify: class %s: %w", class, err)
		}
		c.Models = append(c.Models, m)
	}
	return c, nil
}

// Scores returns the per-class scores for one transformed feature vector.
func (c *Classifier) Scores(x []float64) []float64 {
	out := make([]float64, len(c.Models))
	for i, m := range c.Models {
		out[i] = m.Predict(x)
	}
	return out
}

// Predict returns the argmax class.
func (c *Classifier) Predict(x []float64) Class {
	scores := c.Scores(x)
	best, bestV := Class(0), math.Inf(-1)
	for i, s := range scores {
		if s > bestV {
			best, bestV = Class(i), s
		}
	}
	return best
}

// PredictBatch classifies every row of x.
func (c *Classifier) PredictBatch(x *linalg.Matrix) []Class {
	out := make([]Class, x.Rows)
	for i := 0; i < x.Rows; i++ {
		out[i] = c.Predict(x.Row(i))
	}
	return out
}

// Metrics are the paper's anticipated evaluation: per-class precision and
// recall plus the confusion matrix.
type Metrics struct {
	Accuracy  float64
	Precision [NumClasses]float64
	Recall    [NumClasses]float64
	Confusion [NumClasses][NumClasses]int // [true][predicted]
	N         int
}

// Evaluate scores predictions against true labels.
func Evaluate(pred, truth []Class) *Metrics {
	m := &Metrics{N: len(truth)}
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("classify: %d predictions vs %d labels", len(pred), len(truth)))
	}
	correct := 0
	for i := range truth {
		m.Confusion[truth[i]][pred[i]]++
		if truth[i] == pred[i] {
			correct++
		}
	}
	if m.N > 0 {
		m.Accuracy = float64(correct) / float64(m.N)
	}
	for c := Class(0); c < NumClasses; c++ {
		tp := m.Confusion[c][c]
		var fp, fn int
		for o := Class(0); o < NumClasses; o++ {
			if o == c {
				continue
			}
			fp += m.Confusion[o][c]
			fn += m.Confusion[c][o]
		}
		if tp+fp > 0 {
			m.Precision[c] = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			m.Recall[c] = float64(tp) / float64(tp+fn)
		}
	}
	return m
}

// MacroF1 returns the macro-averaged F1 score.
func (m *Metrics) MacroF1() float64 {
	s := 0.0
	for c := Class(0); c < NumClasses; c++ {
		p, r := m.Precision[c], m.Recall[c]
		if p+r > 0 {
			s += 2 * p * r / (p + r)
		}
	}
	return s / float64(NumClasses)
}
