package classify

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/iosim"
)

func quietParams() iosim.Params {
	p := iosim.DefaultParams()
	p.NoiseSigma = 0
	return p
}

var (
	once sync.Once
	trC  *Classifier
	trD  *Labeled
	teD  *Labeled
	cErr error
)

func trained(t *testing.T) (*Classifier, *Labeled, *Labeled) {
	t.Helper()
	once.Do(func() {
		trD = Generate(700, 1, quietParams())
		teD = Generate(250, 2, quietParams())
		trC, cErr = Train(trD, DefaultConfig())
	})
	if cErr != nil {
		t.Fatalf("train: %v", cErr)
	}
	return trC, trD, teD
}

func TestClassNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Class(0); c < NumClasses; c++ {
		name := c.String()
		if name == "" || seen[name] {
			t.Errorf("class %d has bad name %q", c, name)
		}
		seen[name] = true
	}
	if Class(-1).String() == "" || Class(99).String() == "" {
		t.Error("out-of-range classes should stringify")
	}
}

func TestGenerateLabeledCoverage(t *testing.T) {
	_, tr, _ := trained(t)
	counts := map[Class]int{}
	for i, l := range tr.Labels {
		counts[l]++
		if err := tr.Frame.Records[i].Validate(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	for c := Class(0); c < NumClasses; c++ {
		if counts[c] < 10 {
			t.Errorf("class %s has only %d samples", c, counts[c])
		}
	}
}

func TestClassifierRecallPrecision(t *testing.T) {
	c, _, te := trained(t)
	pred := c.PredictBatch(te.Frame.X)
	m := Evaluate(pred, te.Labels)
	if m.Accuracy < 0.8 {
		t.Errorf("accuracy %.3f < 0.8 (confusion: %v)", m.Accuracy, m.Confusion)
	}
	for class := Class(1); class < NumClasses; class++ { // skip "none": fuzzy
		if m.Recall[class] < 0.6 {
			t.Errorf("recall[%s] = %.3f < 0.6", class, m.Recall[class])
		}
		if m.Precision[class] < 0.6 {
			t.Errorf("precision[%s] = %.3f < 0.6", class, m.Precision[class])
		}
	}
	if f1 := m.MacroF1(); f1 < 0.7 {
		t.Errorf("macro F1 = %.3f", f1)
	}
}

func TestClassOfCounterTotal(t *testing.T) {
	// Every counter maps to exactly one class (possibly None) and the
	// pattern-defining counters map to the right ones.
	for id := darshan.CounterID(0); id < darshan.NumCounters; id++ {
		c := ClassOfCounter(id)
		if c < 0 || c >= NumClasses {
			t.Errorf("counter %s maps to invalid class %d", id, c)
		}
	}
	cases := map[darshan.CounterID]Class{
		darshan.PosixSizeWrite100_1K: ClassSmallSyncWrites,
		darshan.PosixSizeRead100_1K:  ClassSmallReads,
		darshan.PosixSeeks:           ClassExcessiveSeeks,
		darshan.PosixStride1Count:    ClassStridedAccess,
		darshan.PosixFileNotAligned:  ClassRandomAccess,
		darshan.PosixOpens:           ClassMetadataLoad,
		darshan.NProcs:               ClassNone,
	}
	for id, want := range cases {
		if got := ClassOfCounter(id); got != want {
			t.Errorf("ClassOfCounter(%s) = %s, want %s", id, got, want)
		}
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	m := Evaluate([]Class{0, 1, 1}, []Class{0, 1, 2})
	if m.Accuracy < 0.66 || m.Accuracy > 0.67 {
		t.Errorf("accuracy = %v", m.Accuracy)
	}
	if m.Confusion[2][1] != 1 {
		t.Error("confusion matrix wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths accepted")
		}
	}()
	Evaluate([]Class{0}, []Class{0, 1})
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(&Labeled{Frame: Generate(5, 1, quietParams()).Frame, Labels: []Class{0}}, DefaultConfig()); err == nil {
		t.Error("mismatched labels accepted")
	}
}

func TestClassifierDeterministic(t *testing.T) {
	c, _, te := trained(t)
	rng := rand.New(rand.NewSource(1))
	i := rng.Intn(te.Frame.Len())
	a := c.Predict(te.Frame.X.Row(i))
	b := c.Predict(te.Frame.X.Row(i))
	if a != b {
		t.Error("prediction not deterministic")
	}
}

func BenchmarkClassifierPredict(b *testing.B) {
	data := Generate(300, 1, quietParams())
	c, err := Train(data, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	row := data.Frame.X.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Predict(row)
	}
}
