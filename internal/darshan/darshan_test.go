package darshan

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterCount(t *testing.T) {
	if NumCounters != 45 {
		t.Fatalf("NumCounters = %d, paper uses 45", NumCounters)
	}
}

func TestCounterNamesRoundTrip(t *testing.T) {
	names := CounterNames()
	if len(names) != int(NumCounters) {
		t.Fatalf("CounterNames returned %d names", len(names))
	}
	seen := make(map[string]bool)
	for i, name := range names {
		if name == "" {
			t.Fatalf("counter %d has empty name", i)
		}
		if seen[name] {
			t.Fatalf("duplicate counter name %q", name)
		}
		seen[name] = true
		id, ok := CounterByName(name)
		if !ok || id != CounterID(i) {
			t.Fatalf("CounterByName(%q) = %v, %v; want %d, true", name, id, ok, i)
		}
	}
	if _, ok := CounterByName("POSIX_DUPS"); ok {
		t.Fatal("POSIX_DUPS should be excluded (nearly-empty counter)")
	}
}

func TestCounterIDString(t *testing.T) {
	if got := PosixSeeks.String(); got != "POSIX_SEEKS" {
		t.Errorf("PosixSeeks.String() = %q", got)
	}
	if got := CounterID(-1).String(); !strings.Contains(got, "-1") {
		t.Errorf("out-of-range String() = %q", got)
	}
	if got := NumCounters.String(); !strings.Contains(got, "45") {
		t.Errorf("NumCounters.String() = %q", got)
	}
}

func TestSizeBuckets(t *testing.T) {
	cases := []struct {
		size int64
		want CounterID
	}{
		{0, PosixSizeWrite0_100},
		{100, PosixSizeWrite0_100},
		{101, PosixSizeWrite100_1K},
		{1024, PosixSizeWrite100_1K},
		{1025, PosixSizeWrite1K_10K},
		{10 * 1024, PosixSizeWrite1K_10K},
		{10*1024 + 1, PosixSizeWrite10K_100K},
		{100 * 1024, PosixSizeWrite10K_100K},
		{100*1024 + 1, PosixSizeWrite100K_1M},
		{1 << 20, PosixSizeWrite100K_1M},
		{1 << 30, PosixSizeWrite100K_1M},
	}
	for _, c := range cases {
		if got := SizeWriteBucket(c.size); got != c.want {
			t.Errorf("SizeWriteBucket(%d) = %s, want %s", c.size, got, c.want)
		}
	}
	if got := SizeReadBucket(1024); got != PosixSizeRead100_1K {
		t.Errorf("SizeReadBucket(1024) = %s", got)
	}
}

func TestReadWriteCounterClassification(t *testing.T) {
	for id := CounterID(0); id < NumCounters; id++ {
		if id.IsReadCounter() && id.IsWriteCounter() {
			t.Errorf("%s classified as both read and write", id)
		}
	}
	if !PosixBytesRead.IsReadCounter() || !PosixSizeWrite0_100.IsWriteCounter() {
		t.Error("classification of representative counters failed")
	}
	if PosixSeeks.IsReadCounter() || PosixSeeks.IsWriteCounter() {
		t.Error("POSIX_SEEKS is neither read- nor write-only")
	}
}

// seqWrite drives p with n sequential writes of size sz starting at offset 0.
func seqWrite(p *ProcCollector, file int32, n int, sz int64) {
	off := int64(0)
	for i := 0; i < n; i++ {
		p.Observe(Op{Kind: OpWrite, File: file, Offset: off, Size: sz})
		off += sz
	}
}

func TestCollectorSequentialWrite(t *testing.T) {
	c := NewCollector(2, 8, 1<<20)
	for rank := 0; rank < 2; rank++ {
		p := c.Proc(rank)
		p.Observe(Op{Kind: OpOpen, File: 1})
		seqWrite(p, 1, 10, 1024)
		p.Observe(Op{Kind: OpClose, File: 1})
	}
	rec := c.Finalize(1<<20, 1)

	if got := rec.Counter(NProcs); got != 2 {
		t.Errorf("nprocs = %v", got)
	}
	if got := rec.Counter(PosixOpens); got != 2 {
		t.Errorf("POSIX_OPENS = %v", got)
	}
	if got := rec.Counter(PosixWrites); got != 20 {
		t.Errorf("POSIX_WRITES = %v", got)
	}
	if got := rec.Counter(PosixBytesWritten); got != 20*1024 {
		t.Errorf("POSIX_BYTES_WRITTEN = %v", got)
	}
	// 10 writes per proc => 9 transitions, all consecutive.
	if got := rec.Counter(PosixConsecWrites); got != 18 {
		t.Errorf("POSIX_CONSEC_WRITES = %v, want 18", got)
	}
	if got := rec.Counter(PosixSeqWrites); got != 18 {
		t.Errorf("POSIX_SEQ_WRITES = %v, want 18", got)
	}
	if got := rec.Counter(PosixSizeWrite100_1K); got != 20 {
		t.Errorf("POSIX_SIZE_WRITE_100_1K = %v", got)
	}
	// Offsets 0,1024,... are all unaligned w.r.t. 1 MiB except offset 0.
	if got := rec.Counter(PosixFileNotAligned); got != 18 {
		t.Errorf("POSIX_FILE_NOT_ALIGNED = %v, want 18", got)
	}
	// All accesses the same size: ACCESS1 dominates.
	if got := rec.Counter(PosixAccess1Access); got != 1024 {
		t.Errorf("POSIX_ACCESS1_ACCESS = %v", got)
	}
	if got := rec.Counter(PosixAccess1Count); got != 20 {
		t.Errorf("POSIX_ACCESS1_COUNT = %v", got)
	}
	// Consecutive accesses have stride 0, which is not recorded.
	if got := rec.Counter(PosixStride1Count); got != 0 {
		t.Errorf("POSIX_STRIDE1_COUNT = %v, want 0 for consecutive writes", got)
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// A write-only job must have zero read counters (robustness precondition).
	for id := CounterID(0); id < NumCounters; id++ {
		if id.IsReadCounter() && rec.Counter(id) != 0 {
			t.Errorf("write-only job has nonzero read counter %s = %v", id, rec.Counter(id))
		}
	}
}

func TestCollectorStridedRead(t *testing.T) {
	c := NewCollector(1, 8, 1<<20)
	p := c.Proc(0)
	p.Observe(Op{Kind: OpOpen, File: 1})
	off := int64(0)
	const stride = 4096
	const sz = 1024
	for i := 0; i < 100; i++ {
		p.Observe(Op{Kind: OpSeek, File: 1, Offset: off})
		p.Observe(Op{Kind: OpRead, File: 1, Offset: off, Size: sz})
		off += stride
	}
	rec := c.Finalize(1<<20, 1)
	if got := rec.Counter(PosixSeeks); got != 100 {
		t.Errorf("POSIX_SEEKS = %v", got)
	}
	// Gap between accesses is stride-sz = 3072, 99 times.
	if got := rec.Counter(PosixStride1Stride); got != stride-sz {
		t.Errorf("POSIX_STRIDE1_STRIDE = %v, want %d", got, stride-sz)
	}
	if got := rec.Counter(PosixStride1Count); got != 99 {
		t.Errorf("POSIX_STRIDE1_COUNT = %v, want 99", got)
	}
	// Forward strided reads are sequential but not consecutive.
	if got := rec.Counter(PosixSeqReads); got != 99 {
		t.Errorf("POSIX_SEQ_READS = %v, want 99", got)
	}
	if got := rec.Counter(PosixConsecReads); got != 0 {
		t.Errorf("POSIX_CONSEC_READS = %v, want 0", got)
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCollectorRWSwitchesAndMemAlignment(t *testing.T) {
	c := NewCollector(1, 8, 1<<20)
	p := c.Proc(0)
	p.Observe(Op{Kind: OpWrite, File: 1, Offset: 0, Size: 100})
	p.Observe(Op{Kind: OpRead, File: 1, Offset: 100, Size: 100, MemUnaligned: true})
	p.Observe(Op{Kind: OpWrite, File: 1, Offset: 200, Size: 100})
	p.Observe(Op{Kind: OpStat, File: 1})
	rec := c.Finalize(1<<20, 1)
	if got := rec.Counter(PosixRWSwitches); got != 2 {
		t.Errorf("POSIX_RW_SWITCHES = %v, want 2", got)
	}
	if got := rec.Counter(PosixMemNotAligned); got != 1 {
		t.Errorf("POSIX_MEM_NOT_ALIGNED = %v, want 1", got)
	}
	if got := rec.Counter(PosixStats); got != 1 {
		t.Errorf("POSIX_STATS = %v, want 1", got)
	}
}

func TestCollectorBackwardAccessNotSequential(t *testing.T) {
	c := NewCollector(1, 8, 1<<20)
	p := c.Proc(0)
	p.Observe(Op{Kind: OpRead, File: 1, Offset: 1 << 20, Size: 1024})
	p.Observe(Op{Kind: OpRead, File: 1, Offset: 0, Size: 1024}) // backward
	rec := c.Finalize(1<<20, 1)
	if got := rec.Counter(PosixSeqReads); got != 0 {
		t.Errorf("POSIX_SEQ_READS = %v, want 0 for backward access", got)
	}
	if got := rec.Counter(PosixStride1Count); got != 0 {
		t.Errorf("negative stride should not be recorded, STRIDE1_COUNT = %v", got)
	}
}

func TestCollectorSeparateFilesIndependentHistory(t *testing.T) {
	c := NewCollector(1, 8, 1<<20)
	p := c.Proc(0)
	// Interleave two files; each individually consecutive.
	for i := int64(0); i < 5; i++ {
		p.Observe(Op{Kind: OpWrite, File: 1, Offset: i * 100, Size: 100})
		p.Observe(Op{Kind: OpWrite, File: 2, Offset: i * 100, Size: 100})
	}
	rec := c.Finalize(1<<20, 1)
	if got := rec.Counter(PosixConsecWrites); got != 8 {
		t.Errorf("POSIX_CONSEC_WRITES = %v, want 8 (4 per file)", got)
	}
	if got := rec.Counter(PosixRWSwitches); got != 0 {
		t.Errorf("POSIX_RW_SWITCHES = %v, want 0", got)
	}
}

func TestTopKDeterminism(t *testing.T) {
	m := map[int64]int64{10: 5, 20: 5, 30: 7, 40: 1, 50: 5}
	got := topK(m, 4)
	want := []valueCount{{30, 7}, {10, 5}, {20, 5}, {50, 5}}
	if len(got) != len(want) {
		t.Fatalf("topK returned %d entries", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("topK[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRecordSparsityAndNonZero(t *testing.T) {
	rec := &Record{}
	if got := rec.Sparsity(); got != 1 {
		t.Errorf("empty record sparsity = %v, want 1", got)
	}
	rec.SetCounter(PosixReads, 5)
	rec.SetCounter(PosixBytesRead, 100)
	nz := rec.NonZero()
	if len(nz) != 2 || nz[0] != PosixReads || nz[1] != PosixBytesRead {
		t.Errorf("NonZero = %v", nz)
	}
	want := float64(NumCounters-2) / float64(NumCounters)
	if got := rec.Sparsity(); got != want {
		t.Errorf("sparsity = %v, want %v", got, want)
	}
}

func TestRecordValidateCatchesViolations(t *testing.T) {
	rec := &Record{}
	rec.SetCounter(PosixReads, 3) // histogram empty -> mismatch
	if err := rec.Validate(); err == nil {
		t.Error("Validate accepted histogram mismatch")
	}
	rec = &Record{}
	rec.SetCounter(PosixSeeks, -1)
	if err := rec.Validate(); err == nil {
		t.Error("Validate accepted negative counter")
	}
	rec = &Record{}
	rec.SetCounter(PosixConsecWrites, 2)
	rec.SetCounter(PosixSeqWrites, 1)
	if err := rec.Validate(); err == nil {
		t.Error("Validate accepted consec > seq")
	}
}

func TestLogRoundTrip(t *testing.T) {
	rec := &Record{JobID: 42, App: "ior", Year: 2021, PerfMiBps: 412.7, SlowestSeconds: 1.5}
	rec.SetCounter(NProcs, 256)
	rec.SetCounter(PosixWrites, 262144)
	rec.SetCounter(PosixBytesWritten, 268435456)
	rec.SetCounter(PosixStride1Stride, 3072)

	var buf bytes.Buffer
	if err := WriteLog(&buf, rec); err != nil {
		t.Fatalf("WriteLog: %v", err)
	}
	got, err := ParseLog(&buf)
	if err != nil {
		t.Fatalf("ParseLog: %v", err)
	}
	if *got != *rec {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, rec)
	}
}

func TestParseLogIgnoresUnknownCounters(t *testing.T) {
	in := "# jobid: 7\nPOSIX_DUPS\t99\nPOSIX_READS\t3\n"
	rec, err := ParseLog(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseLog: %v", err)
	}
	if rec.JobID != 7 || rec.Counter(PosixReads) != 3 {
		t.Errorf("parsed record = %+v", rec)
	}
}

func TestParseLogErrors(t *testing.T) {
	cases := []string{
		"POSIX_READS\tnot-a-number\n",
		"POSIX_READS 1 2\n",
		"# jobid: abc\n",
		"# year: x\n",
		"# performance_mibps: y\n",
		"# slowest_seconds: z\n",
	}
	for _, in := range cases {
		if _, err := ParseLog(strings.NewReader(in)); err == nil {
			t.Errorf("ParseLog accepted %q", in)
		}
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	ds := &Dataset{}
	for i := 0; i < 5; i++ {
		rec := &Record{JobID: int64(i), App: "app", Year: 2019 + i%4, PerfMiBps: float64(i) * 10}
		rec.SetCounter(PosixReads, float64(i))
		rec.SetCounter(PosixSizeRead0_100, float64(i))
		ds.Append(rec)
	}
	var buf bytes.Buffer
	if err := WriteDataset(&buf, ds); err != nil {
		t.Fatalf("WriteDataset: %v", err)
	}
	got, err := ParseDataset(&buf)
	if err != nil {
		t.Fatalf("ParseDataset: %v", err)
	}
	if got.Len() != ds.Len() {
		t.Fatalf("round trip lost records: got %d want %d", got.Len(), ds.Len())
	}
	for i := range ds.Records {
		if *got.Records[i] != *ds.Records[i] {
			t.Errorf("record %d mismatch", i)
		}
	}
	sum := got.YearSummary()
	if len(sum) != 4 {
		t.Errorf("YearSummary = %v", sum)
	}
}

func TestDatasetAverageSparsity(t *testing.T) {
	ds := &Dataset{}
	if got := ds.AverageSparsity(); got != 0 {
		t.Errorf("empty dataset sparsity = %v", got)
	}
	full := &Record{}
	for id := CounterID(0); id < NumCounters; id++ {
		full.SetCounter(id, 1)
	}
	ds.Append(full)
	ds.Append(&Record{}) // all zeros
	if got := ds.AverageSparsity(); got != 0.5 {
		t.Errorf("AverageSparsity = %v, want 0.5", got)
	}
}

// TestCollectorInvariantsProperty checks the Darshan structural invariants
// over random operation streams.
func TestCollectorInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nprocs := 1 + rng.Intn(4)
		c := NewCollector(nprocs, 8, 1<<20)
		for rank := 0; rank < nprocs; rank++ {
			p := c.Proc(rank)
			nops := rng.Intn(200)
			for i := 0; i < nops; i++ {
				op := Op{
					Kind:         OpKind(rng.Intn(7)),
					File:         int32(rng.Intn(3)),
					Offset:       int64(rng.Intn(1 << 22)),
					Size:         int64(rng.Intn(1 << 21)),
					MemUnaligned: rng.Intn(2) == 0,
				}
				p.Observe(op)
			}
		}
		rec := c.Finalize(1<<20, 4)
		if err := rec.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Reads+writes bytes must match histogram-weighted op counts loosely:
		// total ops in histograms equals POSIX_READS + POSIX_WRITES.
		var hist float64
		for b := PosixSizeRead0_100; b <= PosixSizeWrite100K_1M; b++ {
			hist += rec.Counter(b)
		}
		return hist == rec.Counter(PosixReads)+rec.Counter(PosixWrites)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestCollectorMergeEquivalence: running the same ops through one proc in
// two collectors and merging must equal counters from doubled stream.
func TestCollectorDeterminism(t *testing.T) {
	build := func() *Record {
		c := NewCollector(3, 8, 1<<20)
		for rank := 0; rank < 3; rank++ {
			p := c.Proc(rank)
			rng := rand.New(rand.NewSource(int64(rank)))
			for i := 0; i < 500; i++ {
				p.Observe(Op{
					Kind:   OpKind(rng.Intn(7)),
					File:   int32(rng.Intn(2)),
					Offset: int64(rng.Intn(1 << 20)),
					Size:   int64(rng.Intn(1 << 16)),
				})
			}
		}
		return c.Finalize(1<<20, 2)
	}
	a, b := build(), build()
	if *a != *b {
		t.Error("collector output is not deterministic")
	}
}

func BenchmarkCollectorObserve(b *testing.B) {
	c := NewCollector(1, 8, 1<<20)
	p := c.Proc(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Observe(Op{Kind: OpWrite, File: 1, Offset: int64(i) * 1024, Size: 1024})
	}
}

func TestParseDatasetLenientQuarantinesBadRecords(t *testing.T) {
	good := func(id int64) string {
		return fmt.Sprintf("# darshan log version: aiio-1.0\n# jobid: %d\n# performance_mibps: 100\nPOSIX_READS\t4\nPOSIX_SIZE_READ_0_100\t4\n", id)
	}
	stream := good(1) +
		"# darshan log version: aiio-1.0\nPOSIX_READS broken line with too many fields\n" + // malformed
		good(2) +
		"# darshan log version: aiio-1.0\n# performance_mibps: nan\nPOSIX_WRITES\t1\n" + // NaN perf tag
		"# darshan log version: aiio-1.0\nPOSIX_READS\t-5\n" + // negative counter
		good(3)

	ds, quarantine, err := ParseDatasetLenient(strings.NewReader(stream))
	if err != nil {
		t.Fatalf("lenient parse returned a hard error: %v", err)
	}
	if ds.Len() != 3 {
		t.Fatalf("accepted %d records, want 3", ds.Len())
	}
	if len(quarantine) != 3 {
		t.Fatalf("quarantined %d records, want 3: %v", len(quarantine), quarantine)
	}
	wantIdx := []int{1, 3, 4}
	for i, q := range quarantine {
		if q.Index != wantIdx[i] {
			t.Errorf("quarantine[%d].Index = %d, want %d", i, q.Index, wantIdx[i])
		}
		if q.Line <= 0 {
			t.Errorf("quarantine[%d].Line = %d, want positive", i, q.Line)
		}
		if q.Error() == "" || q.Reason == "" {
			t.Errorf("quarantine[%d] has empty reason", i)
		}
	}
	for i, rec := range ds.Records {
		if reason := vetRecord(rec); reason != "" {
			t.Errorf("accepted record %d fails vetting: %s", i, reason)
		}
	}
	// The strict parser aborts on the same stream.
	if _, err := ParseDataset(strings.NewReader(stream)); err == nil {
		t.Error("strict ParseDataset accepted a corrupt stream")
	}

	sum := QuarantineSummary(ds.Len(), quarantine)
	if !strings.Contains(sum, "3 records parsed") || !strings.Contains(sum, "3 quarantined") {
		t.Errorf("summary = %q", sum)
	}
	if got := QuarantineSummary(5, nil); !strings.Contains(got, "none quarantined") {
		t.Errorf("clean summary = %q", got)
	}
}

func TestParseDatasetLenientPureGarbage(t *testing.T) {
	ds, quarantine, err := ParseDatasetLenient(strings.NewReader("complete\ngarbage\nstream\n"))
	if err != nil {
		t.Fatalf("garbage must quarantine, not error: %v", err)
	}
	if ds.Len() != 0 || len(quarantine) != 1 {
		t.Fatalf("got %d records, %d quarantined; want 0 and 1", ds.Len(), len(quarantine))
	}
}

func TestParseDatasetLenientMatchesStrictOnCleanStream(t *testing.T) {
	var buf bytes.Buffer
	want := &Dataset{}
	for i := int64(1); i <= 4; i++ {
		rec := &Record{JobID: i, PerfMiBps: float64(i) * 10}
		rec.Counters[PosixReads] = float64(i)
		rec.Counters[PosixSizeRead0_100] = float64(i)
		want.Append(rec)
	}
	if err := WriteDataset(&buf, want); err != nil {
		t.Fatal(err)
	}
	ds, quarantine, err := ParseDatasetLenient(bytes.NewReader(buf.Bytes()))
	if err != nil || len(quarantine) != 0 {
		t.Fatalf("clean stream: err=%v quarantine=%v", err, quarantine)
	}
	if ds.Len() != want.Len() {
		t.Fatalf("lenient parsed %d records, want %d", ds.Len(), want.Len())
	}
	for i := range ds.Records {
		if ds.Records[i].Counters != want.Records[i].Counters || ds.Records[i].JobID != want.Records[i].JobID {
			t.Fatalf("record %d differs from strict round trip", i)
		}
	}
}
