package darshan

import (
	"fmt"
	"math"
)

// Record is one job's Darshan log reduced to the AIIO counter set plus the
// metadata AIIO needs: the job identity and the performance tag derived from
// Darshan's time-related counters (Eq. 1 of the paper:
// total transferred bytes / elapsed time of the slowest process, in MiB/s).
type Record struct {
	JobID int64
	// App is the executable name recorded in the log header.
	App string
	// Year is the log-database partition the record belongs to (Table 1).
	Year int
	// Counters holds the 45 POSIX counters in CounterID order.
	Counters [NumCounters]float64
	// PerfMiBps is the performance tag (Eq. 1), in MiB/s. It corresponds to
	// the value Darshan estimates from its time-related counters; those
	// counters themselves are "effects" and are never part of Counters.
	PerfMiBps float64
	// SlowestSeconds is the elapsed I/O time of the slowest process, kept for
	// reporting; it is not a model feature.
	SlowestSeconds float64
}

// Counter returns the value of counter id.
func (r *Record) Counter(id CounterID) float64 { return r.Counters[id] }

// SetCounter sets the value of counter id.
func (r *Record) SetCounter(id CounterID, v float64) { r.Counters[id] = v }

// TotalBytes returns the total transferred bytes (read + written).
func (r *Record) TotalBytes() float64 {
	return r.Counters[PosixBytesRead] + r.Counters[PosixBytesWritten]
}

// Sparsity returns the fraction of the 45 counters that are zero, matching
// the per-job term of the paper's sparsity formula (Section 3.1).
func (r *Record) Sparsity() float64 {
	zeros := 0
	for _, v := range r.Counters {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(NumCounters)
}

// NonZero returns the indices of counters with non-zero values, in canonical
// order. The diagnosis functions use this as the active feature set: SHAP and
// LIME must assign exactly zero contribution to the complement.
func (r *Record) NonZero() []CounterID {
	ids := make([]CounterID, 0, NumCounters)
	for id := CounterID(0); id < NumCounters; id++ {
		if r.Counters[id] != 0 {
			ids = append(ids, id)
		}
	}
	return ids
}

// Validate checks internal consistency of the record's counters. It returns
// a descriptive error for the first violated invariant. The invariants mirror
// what Darshan guarantees by construction:
//
//   - all counters are non-negative and finite
//   - the read size histogram sums to POSIX_READS, the write histogram to
//     POSIX_WRITES
//   - consecutive accesses are a subset of sequential accesses
//   - stride and access top-4 counts cannot exceed the total operation count
func (r *Record) Validate() error {
	for id := CounterID(0); id < NumCounters; id++ {
		v := r.Counters[id]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("darshan: counter %s is not finite: %v", id, v)
		}
		if v < 0 {
			return fmt.Errorf("darshan: counter %s is negative: %v", id, v)
		}
	}
	var readHist, writeHist float64
	for b := PosixSizeRead0_100; b <= PosixSizeRead100K_1M; b++ {
		readHist += r.Counters[b]
	}
	for b := PosixSizeWrite0_100; b <= PosixSizeWrite100K_1M; b++ {
		writeHist += r.Counters[b]
	}
	if readHist != r.Counters[PosixReads] {
		return fmt.Errorf("darshan: read size histogram sums to %v, POSIX_READS is %v",
			readHist, r.Counters[PosixReads])
	}
	if writeHist != r.Counters[PosixWrites] {
		return fmt.Errorf("darshan: write size histogram sums to %v, POSIX_WRITES is %v",
			writeHist, r.Counters[PosixWrites])
	}
	if r.Counters[PosixConsecReads] > r.Counters[PosixSeqReads] {
		return fmt.Errorf("darshan: POSIX_CONSEC_READS %v exceeds POSIX_SEQ_READS %v",
			r.Counters[PosixConsecReads], r.Counters[PosixSeqReads])
	}
	if r.Counters[PosixConsecWrites] > r.Counters[PosixSeqWrites] {
		return fmt.Errorf("darshan: POSIX_CONSEC_WRITES %v exceeds POSIX_SEQ_WRITES %v",
			r.Counters[PosixConsecWrites], r.Counters[PosixSeqWrites])
	}
	ops := r.Counters[PosixReads] + r.Counters[PosixWrites]
	for c := PosixStride1Count; c <= PosixStride4Count; c++ {
		if r.Counters[c] > ops {
			return fmt.Errorf("darshan: %s %v exceeds total ops %v", c, r.Counters[c], ops)
		}
	}
	for c := PosixAccess1Count; c <= PosixAccess4Count; c++ {
		if r.Counters[c] > ops {
			return fmt.Errorf("darshan: %s %v exceeds total ops %v", c, r.Counters[c], ops)
		}
	}
	return nil
}

// Dataset is an in-memory collection of records — the I/O log database of
// Section 3.1.
type Dataset struct {
	Records []*Record
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.Records) }

// Append adds a record.
func (d *Dataset) Append(r *Record) { d.Records = append(d.Records, r) }

// AverageSparsity implements the paper's database-level sparsity formula:
// the mean over jobs of (zero counters / total counters). The paper reports
// 0.2379 for the Cori database.
func (d *Dataset) AverageSparsity() float64 {
	if len(d.Records) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range d.Records {
		sum += r.Sparsity()
	}
	return sum / float64(len(d.Records))
}

// YearSummary aggregates record counts by year, reproducing the structure of
// Table 1.
func (d *Dataset) YearSummary() map[int]int {
	m := make(map[int]int)
	for _, r := range d.Records {
		m[r.Year]++
	}
	return m
}
