package darshan

import (
	"sort"
)

// OpKind is the kind of a POSIX I/O operation observed by the Collector.
type OpKind uint8

// The operation kinds the Collector understands. They correspond to the
// POSIX calls Darshan instruments at the layer AIIO uses.
const (
	OpOpen OpKind = iota
	OpClose
	OpRead
	OpWrite
	OpSeek
	OpStat
	OpFsync
	// OpExchange models middleware work that POSIX never sees — the data
	// exchange and synchronization of two-phase collective I/O. The
	// collector ignores it entirely (no POSIX counter moves), but the
	// simulator charges its client time; this is exactly the upper-layer
	// information the paper's MPI-IO/HDF5 limitation is about.
	OpExchange
)

// Op is a single POSIX I/O operation issued by one process. Offset and Size
// are meaningful for reads and writes; Offset is meaningful for seeks.
// MemUnaligned marks reads/writes whose user buffer violates the memory
// alignment Darshan checks (POSIX_MEM_NOT_ALIGNED).
type Op struct {
	Kind         OpKind
	File         int32
	Offset       int64
	Size         int64
	MemUnaligned bool
}

// maxTrackedValues bounds the per-process stride/access-size tracking tables.
// Darshan itself keeps fixed-size common-value counters; once the table is
// full, previously unseen values are dropped, which matches its behaviour of
// only reporting values common enough to matter.
const maxTrackedValues = 1024

// fileState tracks per-(process,file) access history needed for
// sequential/consecutive/stride detection.
type fileState struct {
	lastEnd   int64
	lastKind  OpKind
	everRead  bool
	everWrite bool
	touched   bool
}

// ProcCollector accumulates counters for a single process. It is not safe
// for concurrent use; run one per goroutine and merge with Collector.Merge.
type ProcCollector struct {
	opens, seeks, stats           int64
	reads, writes                 int64
	memNotAligned, fileNotAligned int64
	consecReads, consecWrites     int64
	seqReads, seqWrites           int64
	rwSwitches                    int64
	bytesRead, bytesWritten       int64
	readHist, writeHist           [5]int64
	strides                       map[int64]int64
	accesses                      map[int64]int64
	files                         map[int32]*fileState
	fileAlign                     int64
}

// NewProcCollector returns a collector for one process. fileAlign is the file
// alignment boundary (POSIX_FILE_ALIGNMENT) against which offsets are
// checked.
func NewProcCollector(fileAlign int64) *ProcCollector {
	if fileAlign <= 0 {
		fileAlign = 1
	}
	return &ProcCollector{
		strides:   make(map[int64]int64),
		accesses:  make(map[int64]int64),
		files:     make(map[int32]*fileState),
		fileAlign: fileAlign,
	}
}

func (p *ProcCollector) file(id int32) *fileState {
	fs := p.files[id]
	if fs == nil {
		fs = &fileState{}
		p.files[id] = fs
	}
	return fs
}

func (p *ProcCollector) track(m map[int64]int64, v int64) {
	if _, ok := m[v]; ok {
		m[v]++
		return
	}
	if len(m) < maxTrackedValues {
		m[v] = 1
	}
}

// Observe records one operation.
func (p *ProcCollector) Observe(op Op) {
	switch op.Kind {
	case OpOpen:
		p.opens++
	case OpStat:
		p.stats++
	case OpSeek:
		p.seeks++
		// An lseek repositions the file pointer but is not itself a data
		// access; sequentiality is judged from data access offsets only.
	case OpRead, OpWrite:
		p.observeAccess(op)
	case OpClose, OpFsync:
		// No dedicated counters in the AIIO 45-counter subset.
	case OpExchange:
		// Middleware-internal: invisible at the POSIX layer.
	}
}

func (p *ProcCollector) observeAccess(op Op) {
	fs := p.file(op.File)
	isWrite := op.Kind == OpWrite

	if op.MemUnaligned {
		p.memNotAligned++
	}
	if op.Offset%p.fileAlign != 0 {
		p.fileNotAligned++
	}

	if fs.touched {
		if (fs.lastKind == OpWrite) != isWrite {
			p.rwSwitches++
		}
		delta := op.Offset - fs.lastEnd
		if op.Offset >= fs.lastEnd {
			if isWrite {
				p.seqWrites++
				if delta == 0 {
					p.consecWrites++
				}
			} else {
				p.seqReads++
				if delta == 0 {
					p.consecReads++
				}
			}
		}
		if delta > 0 {
			p.track(p.strides, delta)
		}
	}
	p.track(p.accesses, op.Size)

	if isWrite {
		p.writes++
		p.bytesWritten += op.Size
		p.writeHist[sizeBucket(op.Size, 0)]++
		fs.everWrite = true
	} else {
		p.reads++
		p.bytesRead += op.Size
		p.readHist[sizeBucket(op.Size, 0)]++
		fs.everRead = true
	}
	fs.lastEnd = op.Offset + op.Size
	fs.lastKind = op.Kind
	fs.touched = true
}

// Collector aggregates per-process collectors into a job-level Record,
// mirroring how Darshan reduces shared-file records across ranks.
type Collector struct {
	fileAlign int64
	memAlign  int64
	procs     []*ProcCollector
}

// NewCollector creates a job-level collector for nprocs processes.
// memAlign and fileAlign become the POSIX_MEM_ALIGNMENT and
// POSIX_FILE_ALIGNMENT counter values.
func NewCollector(nprocs int, memAlign, fileAlign int64) *Collector {
	c := &Collector{fileAlign: fileAlign, memAlign: memAlign}
	c.procs = make([]*ProcCollector, nprocs)
	for i := range c.procs {
		c.procs[i] = NewProcCollector(fileAlign)
	}
	return c
}

// Proc returns the collector for process rank. Each ProcCollector may be
// driven from its own goroutine.
func (c *Collector) Proc(rank int) *ProcCollector { return c.procs[rank] }

// NProcs returns the number of processes.
func (c *Collector) NProcs() int { return len(c.procs) }

type valueCount struct {
	value int64
	count int64
}

// topK reduces a merged value→count table to the k most common values,
// breaking count ties by smaller value for determinism.
func topK(m map[int64]int64, k int) []valueCount {
	vc := make([]valueCount, 0, len(m))
	for v, n := range m {
		vc = append(vc, valueCount{v, n})
	}
	sort.Slice(vc, func(i, j int) bool {
		if vc[i].count != vc[j].count {
			return vc[i].count > vc[j].count
		}
		return vc[i].value < vc[j].value
	})
	if len(vc) > k {
		vc = vc[:k]
	}
	return vc
}

// Finalize merges all process collectors and produces the job Record.
// stripeSize and stripeWidth describe the Lustre layout of the file(s) the
// job accessed. The performance tag is not set here; the caller derives it
// from the simulator's slowest-process time (Eq. 1).
func (c *Collector) Finalize(stripeSize int64, stripeWidth int) *Record {
	rec := &Record{}
	rec.Counters[NProcs] = float64(len(c.procs))
	rec.Counters[LustreStripeSize] = float64(stripeSize)
	rec.Counters[LustreStripeWidth] = float64(stripeWidth)
	rec.Counters[PosixMemAlignment] = float64(c.memAlign)
	rec.Counters[PosixFileAlignment] = float64(c.fileAlign)

	strides := make(map[int64]int64)
	accesses := make(map[int64]int64)
	for _, p := range c.procs {
		rec.Counters[PosixOpens] += float64(p.opens)
		rec.Counters[PosixSeeks] += float64(p.seeks)
		rec.Counters[PosixStats] += float64(p.stats)
		rec.Counters[PosixReads] += float64(p.reads)
		rec.Counters[PosixWrites] += float64(p.writes)
		rec.Counters[PosixMemNotAligned] += float64(p.memNotAligned)
		rec.Counters[PosixFileNotAligned] += float64(p.fileNotAligned)
		rec.Counters[PosixBytesRead] += float64(p.bytesRead)
		rec.Counters[PosixBytesWritten] += float64(p.bytesWritten)
		rec.Counters[PosixConsecReads] += float64(p.consecReads)
		rec.Counters[PosixConsecWrites] += float64(p.consecWrites)
		rec.Counters[PosixSeqReads] += float64(p.seqReads)
		rec.Counters[PosixSeqWrites] += float64(p.seqWrites)
		rec.Counters[PosixRWSwitches] += float64(p.rwSwitches)
		for i := 0; i < 5; i++ {
			rec.Counters[PosixSizeRead0_100+CounterID(i)] += float64(p.readHist[i])
			rec.Counters[PosixSizeWrite0_100+CounterID(i)] += float64(p.writeHist[i])
		}
		for v, n := range p.strides {
			strides[v] += n
		}
		for v, n := range p.accesses {
			accesses[v] += n
		}
	}

	for i, vc := range topK(strides, 4) {
		rec.Counters[PosixStride1Stride+CounterID(i)] = float64(vc.value)
		rec.Counters[PosixStride1Count+CounterID(i)] = float64(vc.count)
	}
	for i, vc := range topK(accesses, 4) {
		rec.Counters[PosixAccess1Access+CounterID(i)] = float64(vc.value)
		rec.Counters[PosixAccess1Count+CounterID(i)] = float64(vc.count)
	}
	return rec
}
