// Package darshan models the Darshan I/O characterization log format used by
// AIIO: the POSIX-level counter schema (Table 4 of the paper), job records,
// an instrumentation Collector that derives every counter from an observed
// operation stream, and a text log format with writer and parser.
//
// The package is a faithful substitute for the Darshan runtime library and
// darshan-parser: counters have the same names and semantics, but they are
// produced by instrumenting simulated workloads (internal/workload) running
// against a simulated parallel file system (internal/iosim) instead of real
// applications running on Cori.
package darshan

import "fmt"

// CounterID identifies one of the POSIX-level I/O counters used by AIIO.
// The set matches Table 4 of the paper: 45 non-time counters that survive
// the paper's pruning (time-related counters are used only to derive the
// performance tag and are dropped from the feature set; nearly-empty
// counters such as POSIX_DUPS and POSIX_RENAME_SOURCES are excluded).
type CounterID int

// The 45 counters, in canonical order. The order defines the layout of
// feature vectors across the whole repository.
const (
	NProcs CounterID = iota
	LustreStripeSize
	LustreStripeWidth
	PosixOpens
	PosixMemAlignment
	PosixFileAlignment
	PosixMemNotAligned
	PosixFileNotAligned
	PosixReads
	PosixWrites
	PosixSeeks
	PosixStats
	PosixBytesRead
	PosixBytesWritten
	PosixConsecReads
	PosixConsecWrites
	PosixSeqReads
	PosixSeqWrites
	PosixRWSwitches
	PosixSizeRead0_100
	PosixSizeRead100_1K
	PosixSizeRead1K_10K
	PosixSizeRead10K_100K
	PosixSizeRead100K_1M
	PosixSizeWrite0_100
	PosixSizeWrite100_1K
	PosixSizeWrite1K_10K
	PosixSizeWrite10K_100K
	PosixSizeWrite100K_1M
	PosixStride1Stride
	PosixStride2Stride
	PosixStride3Stride
	PosixStride4Stride
	PosixStride1Count
	PosixStride2Count
	PosixStride3Count
	PosixStride4Count
	PosixAccess1Access
	PosixAccess2Access
	PosixAccess3Access
	PosixAccess4Access
	PosixAccess1Count
	PosixAccess2Count
	PosixAccess3Count
	PosixAccess4Count

	// NumCounters is the size of a counter vector (45).
	NumCounters
)

// counterNames maps CounterID to the Darshan counter name reported by
// darshan-parser and used throughout the paper's figures.
var counterNames = [NumCounters]string{
	NProcs:                 "nprocs",
	LustreStripeSize:       "LUSTRE_STRIPE_SIZE",
	LustreStripeWidth:      "LUSTRE_STRIPE_WIDTH",
	PosixOpens:             "POSIX_OPENS",
	PosixMemAlignment:      "POSIX_MEM_ALIGNMENT",
	PosixFileAlignment:     "POSIX_FILE_ALIGNMENT",
	PosixMemNotAligned:     "POSIX_MEM_NOT_ALIGNED",
	PosixFileNotAligned:    "POSIX_FILE_NOT_ALIGNED",
	PosixReads:             "POSIX_READS",
	PosixWrites:            "POSIX_WRITES",
	PosixSeeks:             "POSIX_SEEKS",
	PosixStats:             "POSIX_STATS",
	PosixBytesRead:         "POSIX_BYTES_READ",
	PosixBytesWritten:      "POSIX_BYTES_WRITTEN",
	PosixConsecReads:       "POSIX_CONSEC_READS",
	PosixConsecWrites:      "POSIX_CONSEC_WRITES",
	PosixSeqReads:          "POSIX_SEQ_READS",
	PosixSeqWrites:         "POSIX_SEQ_WRITES",
	PosixRWSwitches:        "POSIX_RW_SWITCHES",
	PosixSizeRead0_100:     "POSIX_SIZE_READ_0_100",
	PosixSizeRead100_1K:    "POSIX_SIZE_READ_100_1K",
	PosixSizeRead1K_10K:    "POSIX_SIZE_READ_1K_10K",
	PosixSizeRead10K_100K:  "POSIX_SIZE_READ_10K_100K",
	PosixSizeRead100K_1M:   "POSIX_SIZE_READ_100K_1M",
	PosixSizeWrite0_100:    "POSIX_SIZE_WRITE_0_100",
	PosixSizeWrite100_1K:   "POSIX_SIZE_WRITE_100_1K",
	PosixSizeWrite1K_10K:   "POSIX_SIZE_WRITE_1K_10K",
	PosixSizeWrite10K_100K: "POSIX_SIZE_WRITE_10K_100K",
	PosixSizeWrite100K_1M:  "POSIX_SIZE_WRITE_100K_1M",
	PosixStride1Stride:     "POSIX_STRIDE1_STRIDE",
	PosixStride2Stride:     "POSIX_STRIDE2_STRIDE",
	PosixStride3Stride:     "POSIX_STRIDE3_STRIDE",
	PosixStride4Stride:     "POSIX_STRIDE4_STRIDE",
	PosixStride1Count:      "POSIX_STRIDE1_COUNT",
	PosixStride2Count:      "POSIX_STRIDE2_COUNT",
	PosixStride3Count:      "POSIX_STRIDE3_COUNT",
	PosixStride4Count:      "POSIX_STRIDE4_COUNT",
	PosixAccess1Access:     "POSIX_ACCESS1_ACCESS",
	PosixAccess2Access:     "POSIX_ACCESS2_ACCESS",
	PosixAccess3Access:     "POSIX_ACCESS3_ACCESS",
	PosixAccess4Access:     "POSIX_ACCESS4_ACCESS",
	PosixAccess1Count:      "POSIX_ACCESS1_COUNT",
	PosixAccess2Count:      "POSIX_ACCESS2_COUNT",
	PosixAccess3Count:      "POSIX_ACCESS3_COUNT",
	PosixAccess4Count:      "POSIX_ACCESS4_COUNT",
}

var counterIndex = func() map[string]CounterID {
	m := make(map[string]CounterID, NumCounters)
	for id := CounterID(0); id < NumCounters; id++ {
		m[counterNames[id]] = id
	}
	return m
}()

// String returns the Darshan counter name for id.
func (id CounterID) String() string {
	if id < 0 || id >= NumCounters {
		return fmt.Sprintf("CounterID(%d)", int(id))
	}
	return counterNames[id]
}

// CounterByName returns the CounterID for a Darshan counter name.
func CounterByName(name string) (CounterID, bool) {
	id, ok := counterIndex[name]
	return id, ok
}

// CounterNames returns the 45 counter names in canonical order. The returned
// slice is freshly allocated and may be modified by the caller.
func CounterNames() []string {
	names := make([]string, NumCounters)
	for id := CounterID(0); id < NumCounters; id++ {
		names[id] = counterNames[id]
	}
	return names
}

// IsReadCounter reports whether id only ever becomes non-zero when the job
// performs read operations. Used by robustness tests: a diagnosis for a
// write-only job must not attribute impact to read counters.
func (id CounterID) IsReadCounter() bool {
	switch id {
	case PosixReads, PosixBytesRead, PosixConsecReads, PosixSeqReads,
		PosixSizeRead0_100, PosixSizeRead100_1K, PosixSizeRead1K_10K,
		PosixSizeRead10K_100K, PosixSizeRead100K_1M:
		return true
	}
	return false
}

// IsWriteCounter reports whether id only ever becomes non-zero when the job
// performs write operations.
func (id CounterID) IsWriteCounter() bool {
	switch id {
	case PosixWrites, PosixBytesWritten, PosixConsecWrites, PosixSeqWrites,
		PosixSizeWrite0_100, PosixSizeWrite100_1K, PosixSizeWrite1K_10K,
		PosixSizeWrite10K_100K, PosixSizeWrite100K_1M:
		return true
	}
	return false
}

// SizeReadBucket returns the read-size histogram counter for an access of
// size bytes, mirroring Darshan's bucket boundaries. Accesses of 1 MiB and
// above saturate into the top bucket, as AIIO's 45-counter subset keeps only
// the buckets up to 100K_1M.
func SizeReadBucket(size int64) CounterID {
	return sizeBucket(size, PosixSizeRead0_100)
}

// SizeWriteBucket returns the write-size histogram counter for an access of
// size bytes.
func SizeWriteBucket(size int64) CounterID {
	return sizeBucket(size, PosixSizeWrite0_100)
}

// sizeBucket follows Darshan's inclusive upper bounds: 0–100, 101–1K,
// 1K+1–10K, 10K+1–100K, 100K+1–1M. AIIO's 45-counter subset stops at the
// 100K_1M bucket, so larger accesses saturate into it.
func sizeBucket(size int64, base CounterID) CounterID {
	switch {
	case size <= 100:
		return base
	case size <= 1024:
		return base + 1
	case size <= 10*1024:
		return base + 2
	case size <= 100*1024:
		return base + 3
	default:
		return base + 4
	}
}
