package darshan

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseLog exercises the text-log parser with hostile input: it must
// never panic, and anything it accepts must survive a write/parse round
// trip.
func FuzzParseLog(f *testing.F) {
	f.Add("# darshan log version: aiio-1.0\n# exe: ior\nPOSIX_READS\t3\n")
	f.Add("# jobid: 12\nPOSIX_WRITES\t1e9\nnprocs\t256\n")
	f.Add("")
	f.Add("#")
	f.Add("# exe:")
	f.Add("POSIX_READS\tNaN\n")
	f.Add("POSIX_DUPS\t1\nUNKNOWN_COUNTER\t2\n")
	f.Add("# performance_mibps: 1.5\n# slowest_seconds: 2\n")
	f.Add(strings.Repeat("POSIX_SEEKS\t1\n", 100))
	f.Fuzz(func(t *testing.T, input string) {
		rec, err := ParseLog(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteLog(&buf, rec); err != nil {
			t.Fatalf("WriteLog failed on accepted record: %v", err)
		}
		rec2, err := ParseLog(&buf)
		if err != nil {
			t.Fatalf("re-parse of written log failed: %v", err)
		}
		// Counters must round-trip exactly (metadata strings may be
		// normalized, e.g. whitespace in the app name).
		if rec2.Counters != rec.Counters {
			t.Fatalf("counters changed across round trip")
		}
	})
}

// FuzzParseDataset checks the multi-record splitter.
func FuzzParseDataset(f *testing.F) {
	one := "# darshan log version: aiio-1.0\n# jobid: 1\nPOSIX_READS\t1\n"
	f.Add(one)
	f.Add(one + "\n" + one)
	f.Add("garbage\n" + one)
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ParseDataset(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDataset(&buf, ds); err != nil {
			t.Fatalf("WriteDataset failed: %v", err)
		}
		ds2, err := ParseDataset(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if ds2.Len() != ds.Len() {
			t.Fatalf("record count changed: %d -> %d", ds.Len(), ds2.Len())
		}
	})
}
