package darshan

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseLog exercises the text-log parser with hostile input: it must
// never panic, and anything it accepts must survive a write/parse round
// trip.
func FuzzParseLog(f *testing.F) {
	f.Add("# darshan log version: aiio-1.0\n# exe: ior\nPOSIX_READS\t3\n")
	f.Add("# jobid: 12\nPOSIX_WRITES\t1e9\nnprocs\t256\n")
	f.Add("")
	f.Add("#")
	f.Add("# exe:")
	f.Add("POSIX_READS\tNaN\n")
	f.Add("POSIX_DUPS\t1\nUNKNOWN_COUNTER\t2\n")
	f.Add("# performance_mibps: 1.5\n# slowest_seconds: 2\n")
	f.Add(strings.Repeat("POSIX_SEEKS\t1\n", 100))
	f.Fuzz(func(t *testing.T, input string) {
		rec, err := ParseLog(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteLog(&buf, rec); err != nil {
			t.Fatalf("WriteLog failed on accepted record: %v", err)
		}
		rec2, err := ParseLog(&buf)
		if err != nil {
			t.Fatalf("re-parse of written log failed: %v", err)
		}
		// Counters must round-trip exactly (metadata strings may be
		// normalized, e.g. whitespace in the app name).
		if rec2.Counters != rec.Counters {
			t.Fatalf("counters changed across round trip")
		}
	})
}

// FuzzParseDatasetLenient is the quarantine-path contract: lenient parsing
// never panics, never returns a hard error for in-memory input, and every
// record it accepts carries only finite, non-negative counters and a
// finite, non-negative performance tag — no matter how hostile the stream.
func FuzzParseDatasetLenient(f *testing.F) {
	one := "# darshan log version: aiio-1.0\n# jobid: 1\n# performance_mibps: 50\nPOSIX_READS\t1\n"
	f.Add(one)
	f.Add(one + "\n" + one)
	f.Add("garbage\n" + one)
	f.Add(one + "# darshan log version: aiio-1.0\nPOSIX_READS\t-3\n")
	f.Add("# darshan log version: aiio-1.0\n# performance_mibps: inf\nPOSIX_WRITES\t2\n")
	f.Add("# darshan log version: aiio-1.0\nPOSIX_READS\tNaN\n")
	f.Add("# darshan log version: aiio-1.0\n# jobid: not-a-number\n")
	f.Fuzz(func(t *testing.T, input string) {
		ds, quarantine, err := ParseDatasetLenient(strings.NewReader(input))
		if err != nil {
			// Only a stream-level failure (e.g. a line past the scanner's
			// 1 MiB cap) may surface here; record-level corruption must not.
			if !strings.Contains(err.Error(), "read log stream") {
				t.Fatalf("unexpected hard error: %v", err)
			}
			return
		}
		for i, rec := range ds.Records {
			if reason := vetRecord(rec); reason != "" {
				t.Fatalf("accepted record %d fails vetting: %s", i, reason)
			}
		}
		for _, q := range quarantine {
			if q.Reason == "" || q.Line <= 0 {
				t.Fatalf("malformed quarantine entry: %+v", q)
			}
		}
		_ = QuarantineSummary(ds.Len(), quarantine)
	})
}

// FuzzParseDataset checks the multi-record splitter.
func FuzzParseDataset(f *testing.F) {
	one := "# darshan log version: aiio-1.0\n# jobid: 1\nPOSIX_READS\t1\n"
	f.Add(one)
	f.Add(one + "\n" + one)
	f.Add("garbage\n" + one)
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ParseDataset(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDataset(&buf, ds); err != nil {
			t.Fatalf("WriteDataset failed: %v", err)
		}
		ds2, err := ParseDataset(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if ds2.Len() != ds.Len() {
			t.Fatalf("record count changed: %d -> %d", ds.Len(), ds2.Len())
		}
	})
}
