package darshan

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The text log format mirrors darshan-parser output closely enough to be
// familiar: a commented header carrying job metadata, followed by one
// "<counter-name>\t<value>" line per counter. It is the interchange format
// between the workload runner, the log database on disk, and the AIIO web
// service.

// WriteLog writes rec in the text log format.
func WriteLog(w io.Writer, rec *Record) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# darshan log version: aiio-1.0\n")
	fmt.Fprintf(bw, "# exe: %s\n", rec.App)
	fmt.Fprintf(bw, "# jobid: %d\n", rec.JobID)
	fmt.Fprintf(bw, "# year: %d\n", rec.Year)
	fmt.Fprintf(bw, "# performance_mibps: %s\n", formatFloat(rec.PerfMiBps))
	fmt.Fprintf(bw, "# slowest_seconds: %s\n", formatFloat(rec.SlowestSeconds))
	for id := CounterID(0); id < NumCounters; id++ {
		fmt.Fprintf(bw, "%s\t%s\n", id, formatFloat(rec.Counters[id]))
	}
	return bw.Flush()
}

func formatFloat(v float64) string {
	// Darshan counters are almost always integers; print them that way for
	// familiar darshan-parser-looking output.
	if v == math.Trunc(v) && math.Abs(v) < 1<<53 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseLog parses a single record from the text log format. Unknown counter
// names are ignored (newer Darshan versions add counters AIIO does not use);
// missing counters stay zero, which is exactly the sparsity semantics of
// Section 3.1.
func ParseLog(r io.Reader) (*Record, error) {
	rec := &Record{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseHeaderLine(rec, line); err != nil {
				return nil, fmt.Errorf("darshan: line %d: %w", lineno, err)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("darshan: line %d: want \"name value\", got %q", lineno, line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("darshan: line %d: bad value %q: %w", lineno, fields[1], err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("darshan: line %d: non-finite value %q", lineno, fields[1])
		}
		if id, ok := CounterByName(fields[0]); ok {
			rec.Counters[id] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("darshan: read log: %w", err)
	}
	return rec, nil
}

func parseHeaderLine(rec *Record, line string) error {
	body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	key, value, found := strings.Cut(body, ":")
	if !found {
		return nil // free-form comment
	}
	key = strings.TrimSpace(key)
	value = strings.TrimSpace(value)
	switch key {
	case "exe":
		rec.App = value
	case "jobid":
		id, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fmt.Errorf("bad jobid %q: %w", value, err)
		}
		rec.JobID = id
	case "year":
		y, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("bad year %q: %w", value, err)
		}
		rec.Year = y
	case "performance_mibps":
		p, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("bad performance %q: %w", value, err)
		}
		rec.PerfMiBps = p
	case "slowest_seconds":
		s, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("bad slowest_seconds %q: %w", value, err)
		}
		rec.SlowestSeconds = s
	}
	return nil
}

// WriteDataset writes every record of d, separated by a blank line, so a
// whole log database can live in one stream.
func WriteDataset(w io.Writer, d *Dataset) error {
	for i, rec := range d.Records {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := WriteLog(w, rec); err != nil {
			return err
		}
	}
	return nil
}

// ParseDataset parses a stream of records produced by WriteDataset. Records
// are delimited by the log version header line.
func ParseDataset(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	ds := &Dataset{}
	var chunk strings.Builder
	flush := func() error {
		if chunk.Len() == 0 {
			return nil
		}
		rec, err := ParseLog(strings.NewReader(chunk.String()))
		if err != nil {
			return err
		}
		ds.Append(rec)
		chunk.Reset()
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# darshan log version:") {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		chunk.WriteString(line)
		chunk.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return ds, nil
}

// RecordError describes one quarantined record of a lenient parse.
type RecordError struct {
	// Index is the record's ordinal position in the stream, counting
	// quarantined records (0-based).
	Index int
	// Line is the 1-based line number where the record's chunk starts.
	Line int
	// Reason is why the record was quarantined.
	Reason string
}

// Error implements the error interface.
func (e RecordError) Error() string {
	return fmt.Sprintf("darshan: record %d (line %d) quarantined: %s", e.Index, e.Line, e.Reason)
}

// ParseDatasetLenient parses a WriteDataset-format stream like ParseDataset
// but quarantines bad records instead of aborting the whole database: a
// record whose chunk fails to parse, or that carries NaN/Inf/negative
// counters or a non-finite performance tag, is skipped and reported in the
// returned quarantine list. Real Darshan corpora are riddled with corrupt,
// partial, and out-of-range records; one bad job must not discard the other
// millions. The returned error is non-nil only for a reader failure — a
// stream of pure garbage yields an empty dataset and a full quarantine.
func ParseDatasetLenient(r io.Reader) (*Dataset, []RecordError, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	ds := &Dataset{}
	var quarantine []RecordError
	var chunk strings.Builder
	index := 0
	chunkLine := 1
	lineno := 0
	flush := func() {
		if strings.TrimSpace(chunk.String()) == "" {
			// Whitespace-only chunks are record separators (or a blank
			// preamble), not records: parsing one would fabricate an
			// all-zero phantom job.
			chunk.Reset()
			return
		}
		defer func() {
			chunk.Reset()
			index++
		}()
		rec, err := ParseLog(strings.NewReader(chunk.String()))
		if err != nil {
			quarantine = append(quarantine, RecordError{Index: index, Line: chunkLine, Reason: err.Error()})
			return
		}
		if reason := vetRecord(rec); reason != "" {
			quarantine = append(quarantine, RecordError{Index: index, Line: chunkLine, Reason: reason})
			return
		}
		ds.Append(rec)
	}
	for sc.Scan() {
		line := sc.Text()
		lineno++
		if strings.HasPrefix(line, "# darshan log version:") && chunk.Len() > 0 {
			flush()
			chunkLine = lineno
		}
		if chunk.Len() == 0 {
			chunkLine = lineno
		}
		chunk.WriteString(line)
		chunk.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("darshan: read log stream: %w", err)
	}
	flush()
	return ds, quarantine, nil
}

// vetRecord returns a non-empty reason when a parsed record is out of
// range for the lenient parser: non-finite or negative counters, or a
// non-finite performance tag. (ParseLog already rejects non-finite counter
// literals; this catches values smuggled through headers or computed
// fields.)
func vetRecord(rec *Record) string {
	for id := CounterID(0); id < NumCounters; id++ {
		v := rec.Counters[id]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Sprintf("counter %s is not finite: %v", id, v)
		}
		if v < 0 {
			return fmt.Sprintf("counter %s is negative: %v", id, v)
		}
	}
	if math.IsNaN(rec.PerfMiBps) || math.IsInf(rec.PerfMiBps, 0) {
		return fmt.Sprintf("performance tag is not finite: %v", rec.PerfMiBps)
	}
	if rec.PerfMiBps < 0 {
		return fmt.Sprintf("performance tag is negative: %v", rec.PerfMiBps)
	}
	return ""
}

// QuarantineSummary renders a one-line human-readable account of a lenient
// parse: how many records survived, how many were quarantined, and the
// first few reasons.
func QuarantineSummary(accepted int, quarantine []RecordError) string {
	if len(quarantine) == 0 {
		return fmt.Sprintf("%d records parsed, none quarantined", accepted)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d records parsed, %d quarantined", accepted, len(quarantine))
	const maxShown = 3
	for i, q := range quarantine {
		if i >= maxShown {
			fmt.Fprintf(&b, "; and %d more", len(quarantine)-maxShown)
			break
		}
		fmt.Fprintf(&b, "; [record %d line %d] %s", q.Index, q.Line, q.Reason)
	}
	return b.String()
}
