package darshan

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The text log format mirrors darshan-parser output closely enough to be
// familiar: a commented header carrying job metadata, followed by one
// "<counter-name>\t<value>" line per counter. It is the interchange format
// between the workload runner, the log database on disk, and the AIIO web
// service.

// WriteLog writes rec in the text log format.
func WriteLog(w io.Writer, rec *Record) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# darshan log version: aiio-1.0\n")
	fmt.Fprintf(bw, "# exe: %s\n", rec.App)
	fmt.Fprintf(bw, "# jobid: %d\n", rec.JobID)
	fmt.Fprintf(bw, "# year: %d\n", rec.Year)
	fmt.Fprintf(bw, "# performance_mibps: %s\n", formatFloat(rec.PerfMiBps))
	fmt.Fprintf(bw, "# slowest_seconds: %s\n", formatFloat(rec.SlowestSeconds))
	for id := CounterID(0); id < NumCounters; id++ {
		fmt.Fprintf(bw, "%s\t%s\n", id, formatFloat(rec.Counters[id]))
	}
	return bw.Flush()
}

func formatFloat(v float64) string {
	// Darshan counters are almost always integers; print them that way for
	// familiar darshan-parser-looking output.
	if v == math.Trunc(v) && math.Abs(v) < 1<<53 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseLog parses a single record from the text log format. Unknown counter
// names are ignored (newer Darshan versions add counters AIIO does not use);
// missing counters stay zero, which is exactly the sparsity semantics of
// Section 3.1.
func ParseLog(r io.Reader) (*Record, error) {
	rec := &Record{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseHeaderLine(rec, line); err != nil {
				return nil, fmt.Errorf("darshan: line %d: %w", lineno, err)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("darshan: line %d: want \"name value\", got %q", lineno, line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("darshan: line %d: bad value %q: %w", lineno, fields[1], err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("darshan: line %d: non-finite value %q", lineno, fields[1])
		}
		if id, ok := CounterByName(fields[0]); ok {
			rec.Counters[id] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("darshan: read log: %w", err)
	}
	return rec, nil
}

func parseHeaderLine(rec *Record, line string) error {
	body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	key, value, found := strings.Cut(body, ":")
	if !found {
		return nil // free-form comment
	}
	key = strings.TrimSpace(key)
	value = strings.TrimSpace(value)
	switch key {
	case "exe":
		rec.App = value
	case "jobid":
		id, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fmt.Errorf("bad jobid %q: %w", value, err)
		}
		rec.JobID = id
	case "year":
		y, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("bad year %q: %w", value, err)
		}
		rec.Year = y
	case "performance_mibps":
		p, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("bad performance %q: %w", value, err)
		}
		rec.PerfMiBps = p
	case "slowest_seconds":
		s, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("bad slowest_seconds %q: %w", value, err)
		}
		rec.SlowestSeconds = s
	}
	return nil
}

// WriteDataset writes every record of d, separated by a blank line, so a
// whole log database can live in one stream.
func WriteDataset(w io.Writer, d *Dataset) error {
	for i, rec := range d.Records {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := WriteLog(w, rec); err != nil {
			return err
		}
	}
	return nil
}

// ParseDataset parses a stream of records produced by WriteDataset. Records
// are delimited by the log version header line.
func ParseDataset(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	ds := &Dataset{}
	var chunk strings.Builder
	flush := func() error {
		if chunk.Len() == 0 {
			return nil
		}
		rec, err := ParseLog(strings.NewReader(chunk.String()))
		if err != nil {
			return err
		}
		ds.Append(rec)
		chunk.Reset()
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# darshan log version:") {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		chunk.WriteString(line)
		chunk.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return ds, nil
}
