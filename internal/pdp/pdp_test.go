package pdp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/hpc-repro/aiio/internal/linalg"
)

// linearF is f(x) = 3x0 - 2x1 (+0·x2).
func linearF(x *linalg.Matrix) []float64 {
	out := make([]float64, x.Rows)
	for i := range out {
		r := x.Row(i)
		out[i] = 3*r[0] - 2*r[1]
	}
	return out
}

func randBG(n, d int, sparsity float64, seed int64) *linalg.Matrix {
	rng := rand.New(rand.NewSource(seed))
	bg := linalg.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		row := bg.Row(i)
		for j := range row {
			if rng.Float64() < sparsity {
				row[j] = 0
			} else {
				row[j] = rng.Float64() * 10
			}
		}
	}
	return bg
}

func TestPDPRecoversLinearSlopes(t *testing.T) {
	bg := randBG(400, 3, 0.2, 1)
	e, err := New(linearF, bg, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// For an additive model, PD_j is linear with the true slope; the
	// centered attribution at x_j = mean+1 should be ~slope.
	x := []float64{5, 5, 5}
	phi := e.Explain(x)
	// Signs must match the true effects.
	if phi[0] <= 0 {
		t.Errorf("phi[0] = %v, want > 0", phi[0])
	}
	if phi[1] >= 0 {
		t.Errorf("phi[1] = %v, want < 0", phi[1])
	}
	if math.Abs(phi[2]) > 1e-9 {
		t.Errorf("inactive feature phi = %v", phi[2])
	}
}

func TestPDPIsNotRobust(t *testing.T) {
	// The documented flaw: zero-valued features receive non-zero
	// attribution because PD_j(0) != mean(PD_j).
	bg := randBG(400, 2, 0.2, 2)
	e, err := New(linearF, bg, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	phi := e.Explain([]float64{0, 3})
	if phi[0] == 0 {
		t.Error("expected PDP to assign non-zero attribution to the zero feature (the non-robustness AIIO avoids)")
	}
	if phi[0] >= 0 {
		t.Errorf("zero x0 under positive slope should look 'below average': %v", phi[0])
	}
}

func TestPDPInterpolation(t *testing.T) {
	bg := randBG(300, 2, 0, 3)
	e, err := New(linearF, bg, Config{GridPoints: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Monotone model -> monotone interpolated PD along feature 0.
	prev := math.Inf(-1)
	for v := 0.0; v <= 10; v += 0.5 {
		cur := e.pdAt(0, v)
		if cur < prev-1e-9 {
			t.Fatalf("PD not monotone at %v: %v < %v", v, cur, prev)
		}
		prev = cur
	}
	// Out-of-range values clamp.
	if e.pdAt(0, -5) != e.pd[0][0] {
		t.Error("below-range value should clamp to first grid point")
	}
	if e.pdAt(0, 99) != e.pd[0][len(e.pd[0])-1] {
		t.Error("above-range value should clamp to last grid point")
	}
}

func TestPDPRequiresBackground(t *testing.T) {
	if _, err := New(linearF, nil, DefaultConfig()); err == nil {
		t.Error("nil background accepted")
	}
	if _, err := New(linearF, linalg.NewMatrix(0, 3), DefaultConfig()); err == nil {
		t.Error("empty background accepted")
	}
}

func TestLinearSurrogate(t *testing.T) {
	bg := randBG(500, 3, 0.2, 4)
	y := linearF(bg)
	l, err := FitLinear(bg, y, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Beta[0]-3) > 0.05 || math.Abs(l.Beta[1]+2) > 0.05 {
		t.Errorf("beta = %v, want [3 -2 0]", l.Beta)
	}
	x := []float64{2, 0, 5}
	phi := l.Explain(x)
	if phi[1] != 0 {
		t.Errorf("zero feature got linear attribution %v", phi[1])
	}
	if math.Abs(l.Predict(x)-linearF(linalg.FromRows([][]float64{x}))[0]) > 0.2 {
		t.Error("surrogate prediction far off on a linear model")
	}
}

func TestLinearSurrogateUnderfitsNonlinear(t *testing.T) {
	// The paper's "atypical results" claim: a global linear model cannot
	// represent thresholds; its residual stays large.
	rng := rand.New(rand.NewSource(5))
	bg := randBG(600, 2, 0, 6)
	y := make([]float64, bg.Rows)
	for i := range y {
		r := bg.Row(i)
		if r[0] > 5 {
			y[i] = 10
		}
		y[i] += rng.NormFloat64() * 0.01
	}
	l, err := FitLinear(bg, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	sse := 0.0
	for i := 0; i < bg.Rows; i++ {
		d := l.Predict(bg.Row(i)) - y[i]
		sse += d * d
	}
	rmse := math.Sqrt(sse / float64(bg.Rows))
	if rmse < 1 {
		t.Errorf("linear surrogate RMSE %v suspiciously low for a step function", rmse)
	}
}
