// Package pdp implements the traditional interpretation baselines the paper
// contrasts with SHAP in Section 3.3: the partial dependence plot (PDP,
// Friedman 2001) and a global linear-regression surrogate. Both produce
// per-counter "contributions" for a job, and both exhibit the atypical
// behaviour the paper warns about on tabular Darshan data:
//
//   - PDP averages over the whole database, so a counter's attribution for
//     one job reflects the population, not the job — and counters that are
//     zero for the job still receive non-zero attribution (non-robust);
//   - a global linear fit cannot represent the threshold/interaction
//     structure of I/O performance, so its residuals dwarf the tree models'.
//
// The ablation experiments use this package to show why AIIO's diagnosis
// function is SHAP.
package pdp

import (
	"fmt"
	"sort"

	"github.com/hpc-repro/aiio/internal/linalg"
	"github.com/hpc-repro/aiio/internal/shap"
)

// Config tunes the PDP computation.
type Config struct {
	// GridPoints is the number of evaluation points per feature (quantiles
	// of the background data).
	GridPoints int
	// BackgroundSample bounds the rows averaged over; 0 means all.
	BackgroundSample int
}

// DefaultConfig matches common library defaults.
func DefaultConfig() Config {
	return Config{GridPoints: 16, BackgroundSample: 256}
}

// Explainer computes PDP-based attributions over a background dataset.
type Explainer struct {
	f    shap.PredictFunc
	bg   *linalg.Matrix
	cfg  Config
	grid [][]float64 // per-feature evaluation points
	pd   [][]float64 // per-feature partial dependence at the grid points
	mean []float64   // per-feature mean partial dependence
}

// New precomputes the partial dependence curves of every feature over the
// background data.
func New(f shap.PredictFunc, background *linalg.Matrix, cfg Config) (*Explainer, error) {
	if background == nil || background.Rows == 0 {
		return nil, fmt.Errorf("pdp: background data required")
	}
	if cfg.GridPoints < 2 {
		cfg.GridPoints = DefaultConfig().GridPoints
	}
	bg := background
	if cfg.BackgroundSample > 0 && cfg.BackgroundSample < bg.Rows {
		sub := linalg.NewMatrix(cfg.BackgroundSample, bg.Cols)
		stride := bg.Rows / cfg.BackgroundSample
		for i := 0; i < cfg.BackgroundSample; i++ {
			copy(sub.Row(i), bg.Row(i*stride))
		}
		bg = sub
	}
	e := &Explainer{f: f, bg: bg, cfg: cfg}
	e.grid = make([][]float64, bg.Cols)
	e.pd = make([][]float64, bg.Cols)
	e.mean = make([]float64, bg.Cols)

	work := linalg.NewMatrix(bg.Rows, bg.Cols)
	for j := 0; j < bg.Cols; j++ {
		e.grid[j] = quantileGrid(bg, j, cfg.GridPoints)
		e.pd[j] = make([]float64, len(e.grid[j]))
		for gi, v := range e.grid[j] {
			for i := 0; i < bg.Rows; i++ {
				copy(work.Row(i), bg.Row(i))
				work.Row(i)[j] = v
			}
			e.pd[j][gi] = linalg.Mean(e.f(work))
			e.mean[j] += e.pd[j][gi] / float64(len(e.grid[j]))
		}
	}
	return e, nil
}

// quantileGrid returns distinct quantile points of feature j, always
// including 0 (the sparse value).
func quantileGrid(bg *linalg.Matrix, j, n int) []float64 {
	vals := make([]float64, bg.Rows)
	for i := 0; i < bg.Rows; i++ {
		vals[i] = bg.At(i, j)
	}
	sort.Float64s(vals)
	out := []float64{0}
	for k := 0; k < n; k++ {
		idx := k * (len(vals) - 1) / maxInt(n-1, 1)
		v := vals[idx]
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// pdAt linearly interpolates the partial dependence of feature j at value v.
func (e *Explainer) pdAt(j int, v float64) float64 {
	g, pd := e.grid[j], e.pd[j]
	if v <= g[0] {
		return pd[0]
	}
	if v >= g[len(g)-1] {
		return pd[len(pd)-1]
	}
	i := sort.SearchFloat64s(g, v)
	if g[i] == v {
		return pd[i]
	}
	t := (v - g[i-1]) / (g[i] - g[i-1])
	return pd[i-1]*(1-t) + pd[i]*t
}

// Explain returns the PDP attribution of each feature for x: the centered
// partial dependence PD_j(x_j) − mean(PD_j). Note this is deliberately the
// textbook construction — it is NOT robust: zero-valued features generally
// receive non-zero attribution because PD_j(0) differs from the mean.
func (e *Explainer) Explain(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = e.pdAt(j, v) - e.mean[j]
	}
	return out
}

// LinearSurrogate is a global ridge-regression surrogate diagnosis: fit
// performance ~ counters once, attribute β_j·x_j per job.
type LinearSurrogate struct {
	Beta      []float64
	Intercept float64
}

// FitLinear fits the surrogate on a dataset.
func FitLinear(x *linalg.Matrix, y []float64, ridge float64) (*LinearSurrogate, error) {
	w := make([]float64, x.Rows)
	for i := range w {
		w[i] = 1
	}
	beta, err := linalg.WeightedRidge(x, y, w, ridge, true)
	if err != nil {
		return nil, fmt.Errorf("pdp: linear surrogate: %w", err)
	}
	return &LinearSurrogate{Beta: beta[:x.Cols], Intercept: beta[x.Cols]}, nil
}

// Predict evaluates the surrogate.
func (l *LinearSurrogate) Predict(x []float64) float64 {
	return l.Intercept + linalg.Dot(l.Beta, x)
}

// Explain attributes β_j·x_j per feature (robust for zeros, but globally
// linear: every job with the same counter value gets the same attribution,
// which is exactly the job-level blindness the paper criticizes).
func (l *LinearSurrogate) Explain(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = l.Beta[j] * v
	}
	return out
}
