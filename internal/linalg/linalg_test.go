package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v", m.At(1, 2))
	}
	m.Set(0, 0, 9)
	if m.Data[0] != 9 {
		t.Error("Set failed")
	}
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 {
		t.Errorf("transpose wrong: %+v", tr)
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) == -1 {
		t.Error("Clone is not deep")
	}
}

func TestMulMatchesManual(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	b := FromRows([][]float64{{7, 8, 9}, {10, 11, 12}})
	got := Mul(a, b)
	want := FromRows([][]float64{{27, 30, 33}, {61, 68, 75}, {95, 106, 117}})
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("Mul mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMulParallelConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(200, 64)
	b := NewMatrix(64, 80)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	got := Mul(a, b)
	// Serial reference.
	want := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			for j := 0; j < b.Cols; j++ {
				want.Data[i*want.Cols+j] += av * b.At(k, j)
			}
		}
	}
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-9) {
			t.Fatalf("parallel Mul diverges at %d", i)
		}
	}
}

func TestMulVecAndDot(t *testing.T) {
	m := FromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	got := MulVec(m, []float64{1, 2, 3})
	if got[0] != 7 || got[1] != 6 {
		t.Errorf("MulVec = %v", got)
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot wrong")
	}
}

func TestVectorHelpers(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 {
		t.Errorf("Scale = %v", y)
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Error("Norm2 wrong")
	}
	if Mean(nil) != 0 || Mean([]float64{2, 4}) != 3 {
		t.Error("Mean wrong")
	}
}

func TestPanicsOnShapeMismatch(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	check("Mul", func() { Mul(NewMatrix(2, 3), NewMatrix(2, 3)) })
	check("MulVec", func() { MulVec(NewMatrix(2, 3), []float64{1}) })
	check("Dot", func() { Dot([]float64{1}, []float64{1, 2}) })
	check("FromRows", func() { FromRows([][]float64{{1}, {1, 2}}) })
}

// randomSPD builds A = BᵀB + I, which is symmetric positive definite.
func randomSPD(n int, rng *rand.Rand) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := Mul(b.T(), b)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+1)
	}
	return a
}

func TestCholeskySolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		a := randomSPD(n, rng)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := MulVec(a, xTrue)
		x, err := SolveSPD(a.Clone(), b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-6*(1+math.Abs(xTrue[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, -1}})
	if err := Cholesky(a); err == nil {
		t.Error("Cholesky accepted an indefinite matrix")
	}
}

func TestLUSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ { // diagonal dominance keeps it well-conditioned
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := MulVec(a, xTrue)
		x, err := LUSolve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-7*(1+math.Abs(xTrue[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLUSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := LUSolve(a, []float64{1, 2}); err == nil {
		t.Error("LUSolve accepted a singular matrix")
	}
}

func TestWeightedRidgeRecoversLine(t *testing.T) {
	// y = 2x + 3 with exact data; ridge ~ 0 should recover slope/intercept.
	x := FromRows([][]float64{{0}, {1}, {2}, {3}})
	y := []float64{3, 5, 7, 9}
	w := []float64{1, 1, 1, 1}
	beta, err := WeightedRidge(x, y, w, 1e-10, true)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(beta[0], 2, 1e-5) || !almostEq(beta[1], 3, 1e-5) {
		t.Errorf("beta = %v, want [2 3]", beta)
	}
}

func TestWeightedRidgeRespectsWeights(t *testing.T) {
	// Two inconsistent points; all weight on the second.
	x := FromRows([][]float64{{1}, {1}})
	y := []float64{0, 10}
	beta, err := WeightedRidge(x, y, []float64{1e-12, 1}, 1e-12, false)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(beta[0], 10, 1e-4) {
		t.Errorf("beta = %v, want ~10", beta)
	}
}

func TestWeightedRidgeShrinks(t *testing.T) {
	x := FromRows([][]float64{{1}, {2}, {3}})
	y := []float64{1, 2, 3}
	w := []float64{1, 1, 1}
	small, _ := WeightedRidge(x, y, w, 1e-9, false)
	big, _ := WeightedRidge(x, y, w, 100, false)
	if math.Abs(big[0]) >= math.Abs(small[0]) {
		t.Errorf("ridge did not shrink: λ=100 gives %v vs %v", big[0], small[0])
	}
}

func BenchmarkMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(256, 256)
	c := NewMatrix(256, 256)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
		c.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(a, c)
	}
}
