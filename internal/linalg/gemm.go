package linalg

import "fmt"

// Training-path GEMM primitives. Backprop through a dense layer needs three
// products the inference kernels don't cover: the input gradient G·W (Gemm),
// the weight gradient Gᵀ·X (GemmTA, accumulating), and the single-row rank-1
// update g⊗x (Ger). All three decompose into passes over contiguous
// row-major rows, so they run on the Axpy/Axpy2 micro-kernels: Axpy2 fuses a
// *pair* of rank-1 contributions into one pass over the destination row —
// two FMAs per load/store instead of one — which is the two-row blocking
// that makes these "tiled" without a packed-buffer GEMM. Zero coefficients
// (ReLU- and dropout-killed gradients are mostly zeros) skip their term
// entirely, matching the sparsity shortcuts of the scalar reference loops.
//
// Accumulation order per destination element is pair-major over the summed
// dimension on every path; the AVX2 kernel fuses multiply-adds, so kernel
// and scalar builds agree to float rounding, not bitwise. Training treats
// that the same way gbdt treats histogram subtraction: a reference path
// behind a flag plus parity tests at a documented tolerance.

// axpy2Kernel is the paired 4-lane FMA y += a0*x0 + a1*x1 (one pass over
// y). Installed by the amd64 init alongside the other micro-kernels.
var axpy2Kernel func(a0, a1 float64, x0, x1, y *float64, n int)

// Axpy2 computes y += a0*x0 + a1*x1 in a single pass over y. Per element
// the a0 term is added before the a1 term on every path; the AVX2 kernel
// fuses each multiply-add, so the builds agree to rounding, not bitwise.
func Axpy2(a0, a1 float64, x0, x1, y []float64) {
	if len(x0) != len(y) || len(x1) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy2 length mismatch %d/%d vs %d", len(x0), len(x1), len(y)))
	}
	if axpy2Kernel != nil && len(y) >= 8 {
		axpy2Kernel(a0, a1, &x0[0], &x1[0], &y[0], len(y))
		return
	}
	for i, v := range y {
		v += a0 * x0[i]
		v += a1 * x1[i]
		y[i] = v
	}
}

// Ger applies the rank-1 update a += alpha * x ⊗ y, where a is the
// len(x) x len(y) row-major matrix a[i*len(y)+j]. Rows whose coefficient
// alpha*x[i] is zero are skipped entirely.
func Ger(alpha float64, x, y, a []float64) {
	n := len(y)
	if len(a) < len(x)*n {
		panic(fmt.Sprintf("linalg: Ger matrix %d too small for %dx%d", len(a), len(x), n))
	}
	for i, xv := range x {
		if s := alpha * xv; s != 0 {
			Axpy(s, y, a[i*n:i*n+n])
		}
	}
}

// GemmTA accumulates dst += aᵀ·b for row-major a (m x p) and b (m x n),
// writing into the row-major p x n dst. This is the weight-gradient shape
// dW += Gᵀ·X. Rows of a and b are consumed in pairs so each touched dst row
// is loaded once per pair (Axpy2); a trailing odd row falls back to Ger.
func GemmTA(dst, a, b []float64, m, p, n int) {
	if len(a) < m*p || len(b) < m*n || len(dst) < p*n {
		panic(fmt.Sprintf("linalg: GemmTA shapes a=%d b=%d dst=%d for m=%d p=%d n=%d",
			len(a), len(b), len(dst), m, p, n))
	}
	i := 0
	for ; i+1 < m; i += 2 {
		ar0 := a[i*p : i*p+p]
		ar1 := a[(i+1)*p : (i+1)*p+p]
		br0 := b[i*n : i*n+n]
		br1 := b[(i+1)*n : (i+1)*n+n]
		for o, g0 := range ar0 {
			g1 := ar1[o]
			drow := dst[o*n : o*n+n]
			switch {
			case g0 != 0 && g1 != 0:
				Axpy2(g0, g1, br0, br1, drow)
			case g0 != 0:
				Axpy(g0, br0, drow)
			case g1 != 0:
				Axpy(g1, br1, drow)
			}
		}
	}
	if i < m {
		Ger(1, a[i*p:i*p+p], b[i*n:i*n+n], dst)
	}
}

// Gemm computes dst = a·b (overwriting dst) for row-major a (m x k) and
// b (k x n), dst m x n. This is the input-gradient shape dX = G·W for
// weights stored row-major by output unit. Each dst row accumulates pairs
// of b rows via Axpy2; with k and n in the few-hundreds the working set is
// cache-resident, so the pairing (two FMAs per dst load) is the tiling
// that matters rather than packed blocking.
func Gemm(dst, a, b []float64, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(dst) < m*n {
		panic(fmt.Sprintf("linalg: Gemm shapes a=%d b=%d dst=%d for m=%d k=%d n=%d",
			len(a), len(b), len(dst), m, k, n))
	}
	for i := 0; i < m; i++ {
		drow := dst[i*n : i*n+n]
		for j := range drow {
			drow[j] = 0
		}
		arow := a[i*k : i*k+k]
		o := 0
		for ; o+1 < k; o += 2 {
			g0, g1 := arow[o], arow[o+1]
			br0 := b[o*n : o*n+n]
			br1 := b[(o+1)*n : (o+1)*n+n]
			switch {
			case g0 != 0 && g1 != 0:
				Axpy2(g0, g1, br0, br1, drow)
			case g0 != 0:
				Axpy(g0, br0, drow)
			case g1 != 0:
				Axpy(g1, br1, drow)
			}
		}
		if o < k {
			if g := arow[o]; g != 0 {
				Axpy(g, b[o*n:o*n+n], drow)
			}
		}
	}
}

// ColSumsAcc accumulates the column sums of the row-major m x n matrix a
// into dst (the bias-gradient reduction db += Σ_i G[i]).
func ColSumsAcc(dst, a []float64, m, n int) {
	if len(dst) < n || len(a) < m*n {
		panic(fmt.Sprintf("linalg: ColSumsAcc shapes dst=%d a=%d for m=%d n=%d", len(dst), len(a), m, n))
	}
	for i := 0; i < m; i++ {
		row := a[i*n : i*n+n]
		for j, v := range row {
			dst[j] += v
		}
	}
}
