//go:build amd64

package linalg

// cpuidex and xgetbv0 are implemented in gemv_amd64.s.
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

//go:noescape
func gemvTAVX(dst, w, x *float64, inDim, outDim int, bias *float64)

//go:noescape
func gemvT2AVX(dst0, dst1, w, x0, x1 *float64, inDim, outDim int, bias *float64)

//go:noescape
func gluAVX(dst, u, v *float64, n int)

//go:noescape
func scaleShiftReLUAVX(x, scale, shift *float64, n int)

//go:noescape
func scaleShiftIntoAVX(dst, x, scale, shift *float64, n int)

//go:noescape
func scaleMaxAVX(v, scale *float64, n int) float64

//go:noescape
func maskGreaterAVX(v *float64, lim float64, n int) uint64

//go:noescape
func scaleAVX(alpha float64, x *float64, n int)

//go:noescape
func reluAVX(x *float64, n int)

//go:noescape
func dotAVX(a, b *float64, n int) float64

//go:noescape
func axpyAVX(alpha float64, x, y *float64, n int)

//go:noescape
func axpy2AVX(a0, a1 float64, x0, x1, y *float64, n int)

//go:noescape
func mulAVX(x, y *float64, n int)

//go:noescape
func mulAccAVX(acc, a, b *float64, n int)

//go:noescape
func subAVX(dst, a, b *float64, n int)

//go:noescape
func reluMaskAVX(x, mask *float64, n int)

//go:noescape
func sqDiffAccAVX(acc, x, mean *float64, n int)

//go:noescape
func bnApplyAVX(x, xhat, mean, invStd, gamma, beta *float64, n int)

//go:noescape
func bnBackApplyAVX(out, grad, xhat, c1, c2, c3 *float64, n int)

//go:noescape
func adamStepAVX(w, m, v, grad *float64, n int, consts *float64)

//go:noescape
func dropoutApplyAVX(x, mask, u *float64, keep, invKeep float64, n int)

// init installs the AVX2+FMA micro-kernels when the CPU and OS support
// them (AVX2 + FMA3 instruction sets, YMM state enabled via XGETBV).
// Without support, the kernel pointers stay nil and the portable scalar
// paths run.
func init() {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return
	}
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
		avx2    = 1 << 5
	)
	_, _, c1, _ := cpuidex(1, 0)
	if c1&fma == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return
	}
	if lo, _ := xgetbv0(); lo&6 != 6 {
		return
	}
	if _, b7, _, _ := cpuidex(7, 0); b7&avx2 == 0 {
		return
	}
	gemvTKernel = gemvTAVX
	gemvT2Kernel = gemvT2AVX
	gluKernel = gluAVX
	scaleShiftReLUKernel = scaleShiftReLUAVX
	scaleShiftIntoKernel = scaleShiftIntoAVX
	scaleMaxKernel = scaleMaxAVX
	maskGreaterKernel = maskGreaterAVX
	scaleKernel = scaleAVX
	reluKernel = reluAVX
	dotKernel = dotAVX
	axpyKernel = axpyAVX
	axpy2Kernel = axpy2AVX
	mulKernel = mulAVX
	mulAccKernel = mulAccAVX
	subKernel = subAVX
	reluMaskKernel = reluMaskAVX
	sqDiffAccKernel = sqDiffAccAVX
	bnApplyKernel = bnApplyAVX
	bnBackApplyKernel = bnBackApplyAVX
	adamStepKernel = adamStepAVX
	dropoutApplyKernel = dropoutApplyAVX
}
