package linalg

import (
	"math/rand"
	"testing"
)

// The training GEMM primitives decompose into Axpy/Axpy2 passes with
// zero-coefficient skips; these tests pin them against naive triple loops.
// Tolerances follow the kernels_test.go convention: the AVX2 build fuses
// multiply-adds and pairs rank-1 terms, so agreement is to rounding.

func TestAxpy2MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 3, 4, 7, 8, 9, 12, 15, 16, 45, 64, 100} {
		x0 := make([]float64, n)
		x1 := make([]float64, n)
		y := make([]float64, n)
		want := make([]float64, n)
		a0, a1 := rng.NormFloat64(), rng.NormFloat64()
		for i := range y {
			x0[i], x1[i], y[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
			want[i] = y[i] + a0*x0[i] + a1*x1[i]
		}
		Axpy2(a0, a1, x0, x1, y)
		for i := range y {
			if !relClose(y[i], want[i], 1e-12) {
				t.Fatalf("n=%d y[%d]=%v want %v", n, i, y[i], want[i])
			}
		}
	}
}

func TestGerMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {4, 8}, {7, 9}, {16, 45}} {
		rows, cols := dims[0], dims[1]
		x := make([]float64, rows)
		y := make([]float64, cols)
		a := make([]float64, rows*cols)
		want := make([]float64, rows*cols)
		alpha := rng.NormFloat64()
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		x[0] = 0 // exercise the zero-row skip
		for j := range y {
			y[j] = rng.NormFloat64()
		}
		for i := range a {
			a[i] = rng.NormFloat64()
			want[i] = a[i] + alpha*x[i/cols]*y[i%cols]
		}
		Ger(alpha, x, y, a)
		for i := range a {
			if !relClose(a[i], want[i], 1e-12) {
				t.Fatalf("%dx%d a[%d]=%v want %v", rows, cols, i, a[i], want[i])
			}
		}
	}
}

func TestGemmTAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 4, 8}, {7, 9, 11}, {16, 45, 45}, {33, 8, 90}} {
		m, p, n := dims[0], dims[1], dims[2]
		a := make([]float64, m*p)
		b := make([]float64, m*n)
		dst := make([]float64, p*n)
		want := make([]float64, p*n)
		for i := range a {
			a[i] = rng.NormFloat64()
			if rng.Intn(3) == 0 {
				a[i] = 0 // exercise the sparse-gradient skips
			}
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		for i := range dst {
			dst[i] = rng.NormFloat64()
			want[i] = dst[i]
		}
		for i := 0; i < m; i++ {
			for o := 0; o < p; o++ {
				for j := 0; j < n; j++ {
					want[o*n+j] += a[i*p+o] * b[i*n+j]
				}
			}
		}
		GemmTA(dst, a, b, m, p, n)
		for i := range dst {
			if !relClose(dst[i], want[i], 1e-11) {
				t.Fatalf("m=%d p=%d n=%d dst[%d]=%v want %v", m, p, n, i, dst[i], want[i])
			}
		}
	}
}

func TestGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 4, 8}, {7, 9, 11}, {16, 45, 45}, {33, 8, 90}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := make([]float64, m*k)
		b := make([]float64, k*n)
		dst := make([]float64, m*n)
		want := make([]float64, m*n)
		for i := range a {
			a[i] = rng.NormFloat64()
			if rng.Intn(3) == 0 {
				a[i] = 0
			}
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		for i := range dst {
			dst[i] = rng.NormFloat64() // Gemm must overwrite, not accumulate
		}
		for i := 0; i < m; i++ {
			for o := 0; o < k; o++ {
				for j := 0; j < n; j++ {
					want[i*n+j] += a[i*k+o] * b[o*n+j]
				}
			}
		}
		Gemm(dst, a, b, m, k, n)
		for i := range dst {
			if !relClose(dst[i], want[i], 1e-11) {
				t.Fatalf("m=%d k=%d n=%d dst[%d]=%v want %v", m, k, n, i, dst[i], want[i])
			}
		}
	}
}

func TestColSumsAccMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {16, 45}, {33, 7}} {
		m, n := dims[0], dims[1]
		a := make([]float64, m*n)
		dst := make([]float64, n)
		want := make([]float64, n)
		for j := range dst {
			dst[j] = rng.NormFloat64()
			want[j] = dst[j]
		}
		for i := range a {
			a[i] = rng.NormFloat64()
			want[i%n] += a[i]
		}
		ColSumsAcc(dst, a, m, n)
		for j := range dst {
			if !relClose(dst[j], want[j], 1e-12) {
				t.Fatalf("m=%d n=%d dst[%d]=%v want %v", m, n, j, dst[j], want[j])
			}
		}
	}
}
