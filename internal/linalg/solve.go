package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a system has no usable factorization.
var ErrSingular = errors.New("linalg: matrix is singular or not positive definite")

// Cholesky factors the symmetric positive-definite matrix a in place into
// its lower-triangular factor L (a = L·Lᵀ); the strict upper triangle is
// left untouched. It returns ErrSingular when a pivot degenerates.
func Cholesky(a *Matrix) error {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("linalg: Cholesky of non-square %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			v := a.At(j, k)
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrSingular
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, s/d)
		}
	}
	return nil
}

// CholeskySolve solves a·x = b given the in-place Cholesky factor produced
// by Cholesky. b is not modified.
func CholeskySolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: CholeskySolve rhs length %d, want %d", len(b), n))
	}
	x := make([]float64, n)
	copy(x, b)
	// Forward: L·y = b.
	for i := 0; i < n; i++ {
		for k := 0; k < i; k++ {
			x[i] -= l.At(i, k) * x[k]
		}
		x[i] /= l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		for k := i + 1; k < n; k++ {
			x[i] -= l.At(k, i) * x[k]
		}
		x[i] /= l.At(i, i)
	}
	return x
}

// SolveSPD solves a·x = b for symmetric positive-definite a, adding a tiny
// progressive ridge jitter when the plain factorization fails. a is consumed.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	jitter := 0.0
	base := a.Clone()
	for attempt := 0; attempt < 6; attempt++ {
		work := base.Clone()
		if jitter > 0 {
			for i := 0; i < work.Rows; i++ {
				work.Set(i, i, work.At(i, i)+jitter)
			}
		}
		if err := Cholesky(work); err == nil {
			return CholeskySolve(work, b), nil
		}
		if jitter == 0 {
			// Scale the first jitter with the matrix magnitude.
			maxDiag := 0.0
			for i := 0; i < base.Rows; i++ {
				if d := math.Abs(base.At(i, i)); d > maxDiag {
					maxDiag = d
				}
			}
			jitter = 1e-10 * (maxDiag + 1)
		} else {
			jitter *= 100
		}
	}
	return nil, ErrSingular
}

// LUSolve solves a·x = b by Gaussian elimination with partial pivoting for
// general square systems. a and b are not modified.
func LUSolve(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("linalg: LUSolve of non-square %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: LUSolve rhs length %d, want %d", len(b), n))
	}
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, p = v, r
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		if p != col {
			pr, cr := m.Row(p), m.Row(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
			x[p], x[col] = x[col], x[p]
		}
		pivot := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / pivot
			if f == 0 {
				continue
			}
			rrow, crow := m.Row(r), m.Row(col)
			for j := col; j < n; j++ {
				rrow[j] -= f * crow[j]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= m.At(i, j) * x[j]
		}
		x[i] /= m.At(i, i)
	}
	return x, nil
}

// WeightedRidge solves the weighted ridge least-squares problem
//
//	min_β Σ_i w_i (y_i − x_iᵀβ)² + λ‖β‖²
//
// via the normal equations (XᵀWX + λI)β = XᵀWy. X has one sample per row;
// w must be non-negative. When fitIntercept is true an implicit all-ones
// column is appended and the returned slice has the intercept last (length
// X.Cols+1); the intercept is not penalized.
func WeightedRidge(x *Matrix, y, w []float64, lambda float64, fitIntercept bool) ([]float64, error) {
	if x.Rows != len(y) || x.Rows != len(w) {
		panic(fmt.Sprintf("linalg: WeightedRidge shapes: X %dx%d, y %d, w %d",
			x.Rows, x.Cols, len(y), len(w)))
	}
	d := x.Cols
	if fitIntercept {
		d++
	}
	xtwx := NewMatrix(d, d)
	xtwy := make([]float64, d)
	row := make([]float64, d)
	for i := 0; i < x.Rows; i++ {
		wi := w[i]
		if wi == 0 {
			continue
		}
		copy(row, x.Row(i))
		if fitIntercept {
			row[d-1] = 1
		}
		for a := 0; a < d; a++ {
			va := row[a] * wi
			if va == 0 {
				continue
			}
			xtwy[a] += va * y[i]
			// XᵀWX is symmetric: accumulate the upper triangle only and
			// mirror below; each (a,b) product is computed exactly once, so
			// the mirrored matrix is identical to the full accumulation.
			Axpy(va, row[a:], xtwx.Row(a)[a:])
		}
	}
	for a := 0; a < d; a++ {
		ra := xtwx.Row(a)
		for b := a + 1; b < d; b++ {
			xtwx.Row(b)[a] = ra[b]
		}
	}
	nPen := d
	if fitIntercept {
		nPen = d - 1
	}
	for i := 0; i < nPen; i++ {
		xtwx.Set(i, i, xtwx.At(i, i)+lambda)
	}
	return SolveSPD(xtwx, xtwy)
}
