package linalg

import (
	"fmt"
	"math"
)

// Training-loop kernels: the elementwise inner loops of the mlp/tabnet
// training hot path (ReLU masking, dropout-mask application, batch-norm
// statistics and normalization, the Adam optimizer update) as 4-lane AVX2
// kernels with portable scalar fallbacks. Each kernel covers the largest
// multiple-of-4 prefix; the Go wrapper finishes the tail, so the asm needs
// no scalar epilogue. Like the other kernels in this package, the AVX2 and
// scalar paths agree to float rounding (fused multiply-adds round once),
// not bitwise.

var (
	// mulKernel is x[i] *= y[i].
	mulKernel func(x, y *float64, n int)
	// mulAccKernel is acc[i] += a[i]*b[i].
	mulAccKernel func(acc, a, b *float64, n int)
	// subKernel is dst[i] = a[i] - b[i].
	subKernel func(dst, a, b *float64, n int)
	// reluMaskKernel is mask[i] = 1 if x[i] > 0 else 0; x[i] = max(x[i], 0).
	reluMaskKernel func(x, mask *float64, n int)
	// sqDiffAccKernel is acc[i] += (x[i]-mean[i])^2.
	sqDiffAccKernel func(acc, x, mean *float64, n int)
	// bnApplyKernel is xhat[i] = (x[i]-mean[i])*invStd[i];
	// x[i] = gamma[i]*xhat[i] + beta[i].
	bnApplyKernel func(x, xhat, mean, invStd, gamma, beta *float64, n int)
	// bnBackApplyKernel is out[i] = c1[i]*(g[i] - c2[i] - xhat[i]*c3[i]).
	bnBackApplyKernel func(out, g, xhat, c1, c2, c3 *float64, n int)
	// adamStepKernel applies the Adam update with folded constants
	// {b1, 1-b1, b2, 1-b2, 1/c1, 1/c2, lr, eps}.
	adamStepKernel func(w, m, v, g *float64, n int, consts *float64)
	// dropoutApplyKernel scales x and mask by invKeep where u < keep,
	// zeroing both elsewhere.
	dropoutApplyKernel func(x, mask, u *float64, keep, invKeep float64, n int)
)

// EMul computes the elementwise product x[i] *= y[i] — the fused
// ReLU x dropout backward mask application.
func EMul(x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: EMul length mismatch %d vs %d", len(x), len(y)))
	}
	i := 0
	if mulKernel != nil && len(x) >= 8 {
		i = len(x) &^ 3
		mulKernel(&x[0], &y[0], i)
	}
	for ; i < len(x); i++ {
		x[i] *= y[i]
	}
}

// ESub computes the elementwise difference dst[i] = a[i] - b[i] — the
// gbdt histogram-subtraction trick's inner loop, where dst/a/b are
// multi-hundred-KB per-node slabs and the loop is pure streaming bandwidth.
func ESub(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic(fmt.Sprintf("linalg: ESub length mismatch %d/%d/%d", len(dst), len(a), len(b)))
	}
	i := 0
	if subKernel != nil && len(dst) >= 8 {
		i = len(dst) &^ 3
		subKernel(&dst[0], &a[0], &b[0], i)
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] - b[i]
	}
}

// MulAcc computes acc[i] += a[i]*b[i] — the Σ g·x̂ column reduction of the
// batch-norm backward pass, one row at a time.
func MulAcc(acc, a, b []float64) {
	if len(acc) != len(a) || len(a) != len(b) {
		panic(fmt.Sprintf("linalg: MulAcc length mismatch %d/%d/%d", len(acc), len(a), len(b)))
	}
	i := 0
	if mulAccKernel != nil && len(acc) >= 8 {
		i = len(acc) &^ 3
		mulAccKernel(&acc[0], &a[0], &b[0], i)
	}
	for ; i < len(acc); i++ {
		acc[i] += a[i] * b[i]
	}
}

// ReLUMask rectifies x in place while recording the keep mask: mask[i] = 1
// where x[i] > 0, else 0 with x[i] zeroed. The mask is float so dropout can
// fold its inverted scale into the same buffer and backward applies both in
// one EMul. A NaN activation gets mask 0 and x zeroed on both paths (the
// AVX2 kernel rectifies by ANDing with the compare mask).
func ReLUMask(x, mask []float64) {
	if len(x) != len(mask) {
		panic(fmt.Sprintf("linalg: ReLUMask length mismatch %d vs %d", len(x), len(mask)))
	}
	i := 0
	if reluMaskKernel != nil && len(x) >= 8 {
		i = len(x) &^ 3
		reluMaskKernel(&x[0], &mask[0], i)
	}
	for ; i < len(x); i++ {
		if x[i] > 0 {
			mask[i] = 1
		} else {
			mask[i] = 0
			x[i] = 0
		}
	}
}

// SqDiffAcc accumulates acc[i] += (x[i]-mean[i])² — the per-column variance
// reduction of the batch-norm forward pass, one row at a time.
func SqDiffAcc(acc, x, mean []float64) {
	if len(acc) != len(x) || len(x) != len(mean) {
		panic(fmt.Sprintf("linalg: SqDiffAcc length mismatch %d/%d/%d", len(acc), len(x), len(mean)))
	}
	i := 0
	if sqDiffAccKernel != nil && len(acc) >= 8 {
		i = len(acc) &^ 3
		sqDiffAccKernel(&acc[0], &x[0], &mean[0], i)
	}
	for ; i < len(acc); i++ {
		d := x[i] - mean[i]
		acc[i] += d * d
	}
}

// BNApply normalizes one row in place against the batch statistics while
// caching the normalized values: xhat[i] = (x[i]-mean[i])*invStd[i], then
// x[i] = gamma[i]*xhat[i] + beta[i].
func BNApply(x, xhat, mean, invStd, gamma, beta []float64) {
	n := len(x)
	if len(xhat) != n || len(mean) != n || len(invStd) != n || len(gamma) != n || len(beta) != n {
		panic("linalg: BNApply length mismatch")
	}
	i := 0
	if bnApplyKernel != nil && n >= 8 {
		i = n &^ 3
		bnApplyKernel(&x[0], &xhat[0], &mean[0], &invStd[0], &gamma[0], &beta[0], i)
	}
	for ; i < n; i++ {
		xh := (x[i] - mean[i]) * invStd[i]
		xhat[i] = xh
		x[i] = gamma[i]*xh + beta[i]
	}
}

// BNBackApply computes the batch-norm input gradient for one row from
// precomputed per-column coefficients: out[i] = c1[i]*(g[i] - c2[i] -
// xhat[i]*c3[i]), where c1 = γ·invStd, c2 = Σg/n, c3 = Σg·x̂/n.
func BNBackApply(out, g, xhat, c1, c2, c3 []float64) {
	n := len(out)
	if len(g) != n || len(xhat) != n || len(c1) != n || len(c2) != n || len(c3) != n {
		panic("linalg: BNBackApply length mismatch")
	}
	i := 0
	if bnBackApplyKernel != nil && n >= 8 {
		i = n &^ 3
		bnBackApplyKernel(&out[0], &g[0], &xhat[0], &c1[0], &c2[0], &c3[0], i)
	}
	for ; i < n; i++ {
		out[i] = c1[i] * (g[i] - c2[i] - xhat[i]*c3[i])
	}
}

// DropoutApply applies an inverted-scale dropout decided by the
// pre-drawn uniforms u: where u[i] < keep, x[i] and mask[i] scale by
// invKeep; elsewhere both drop to zero. Buffering the uniforms keeps the
// caller's RNG stream identical to a draw-inside-the-loop reference while
// the comparison and scaling run 4 lanes at a time.
func DropoutApply(x, mask, u []float64, keep, invKeep float64) {
	n := len(x)
	if len(mask) != n || len(u) != n {
		panic(fmt.Sprintf("linalg: DropoutApply length mismatch %d/%d/%d", n, len(mask), len(u)))
	}
	i := 0
	if dropoutApplyKernel != nil && n >= 8 {
		i = n &^ 3
		dropoutApplyKernel(&x[0], &mask[0], &u[0], keep, invKeep, i)
	}
	for ; i < n; i++ {
		if u[i] < keep {
			mask[i] *= invKeep
			x[i] *= invKeep
		} else {
			mask[i] = 0
			x[i] = 0
		}
	}
}

// AdamStep applies one Adam update over a tensor: m and v are the first and
// second moment estimates, g the gradient, c1/c2 the bias corrections
// (1-β1ᵗ, 1-β2ᵗ):
//
//	m[i] = b1*m[i] + (1-b1)*g[i]
//	v[i] = b2*v[i] + (1-b2)*g[i]²
//	w[i] -= lr * (m[i]/c1) / (sqrt(v[i]/c2) + eps)
//
// The bias corrections are applied as multiplications by precomputed
// reciprocals on every path (one rounding difference from the textbook
// divisions, far below the stochastic noise of the update itself).
func AdamStep(w, m, v, g []float64, b1, b2, c1, c2, lr, eps float64) {
	n := len(w)
	if len(m) != n || len(v) != n || len(g) != n {
		panic(fmt.Sprintf("linalg: AdamStep length mismatch %d/%d/%d/%d", n, len(m), len(v), len(g)))
	}
	q1, q2 := 1-b1, 1-b2
	invC1, invC2 := 1/c1, 1/c2
	i := 0
	if adamStepKernel != nil && n >= 8 {
		i = n &^ 3
		consts := [8]float64{b1, q1, b2, q2, invC1, invC2, lr, eps}
		adamStepKernel(&w[0], &m[0], &v[0], &g[0], i, &consts[0])
	}
	for ; i < n; i++ {
		gv := g[i]
		mi := b1*m[i] + q1*gv
		vi := b2*v[i] + q2*gv*gv
		m[i] = mi
		v[i] = vi
		w[i] -= lr * (mi * invC1) / (math.Sqrt(vi*invC2) + eps)
	}
}
