//go:build amd64

#include "textflag.h"

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gemvTAVX(dst, w, x *float64, inDim, outDim int, bias *float64)
//
// dst[o] = dot(w[o*inDim : (o+1)*inDim], x[:inDim]) (+ bias[o] when bias is
// non-nil) for o = 0..outDim-1. outDim must be a multiple of 4 (the Go
// wrapper peels the remainder) and inDim must be >= 1.
//
// Outputs run in tiles of four weight rows streaming against one ymm-wide
// load of x per iteration: 5 loads feed 16 FLOPs of fused multiply-add,
// with four independent accumulator vectors hiding the FMA latency. The
// whole output loop lives in the kernel so the asm-call overhead is paid
// once per GemvT, not once per tile. The <4 element inDim tail runs as
// scalar FMAs against the already-reduced (and bias-added) sums in dst.
TEXT ·gemvTAVX(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ w+8(FP), R11
	MOVQ x+16(FP), R12
	MOVQ inDim+24(FP), DX
	MOVQ outDim+32(FP), R13
	MOVQ bias+40(FP), R14

	SHRQ $2, R13             // output tile count
	JZ   gtdone
	MOVQ DX, R15
	SHLQ $3, R15             // weight row stride in bytes

gttile:
	MOVQ R11, SI             // w row 0
	LEAQ (SI)(R15*1), R8     // w row 1
	LEAQ (R8)(R15*1), R9     // w row 2
	LEAQ (R9)(R15*1), R10    // w row 3
	MOVQ R12, CX             // x

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

	MOVQ DX, BX
	SHRQ $2, BX              // number of 4-wide blocks
	JZ   gtreduce

gtloop4:
	VMOVUPD     (CX), Y4
	VFMADD231PD (SI), Y4, Y0
	VFMADD231PD (R8), Y4, Y1
	VFMADD231PD (R9), Y4, Y2
	VFMADD231PD (R10), Y4, Y3
	ADDQ $32, CX
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	DECQ BX
	JNZ  gtloop4

gtreduce:
	// Transpose-reduce the four accumulators into one [s0 s1 s2 s3].
	VHADDPD    Y1, Y0, Y5         // [a0+a1, b0+b1, a2+a3, b2+b3]
	VHADDPD    Y3, Y2, Y6         // [c0+c1, d0+d1, c2+c3, d2+d3]
	VPERM2F128 $0x20, Y6, Y5, Y7  // low halves
	VPERM2F128 $0x31, Y6, Y5, Y8  // high halves
	VADDPD     Y8, Y7, Y0

	TESTQ  R14, R14
	JZ     gtnobias
	VADDPD (R14), Y0, Y0
	ADDQ   $32, R14

gtnobias:
	VMOVUPD Y0, (DI)

	MOVQ DX, AX
	ANDQ $3, AX
	JZ   gtnext

gttail:
	VMOVSD      (CX), X4
	VMOVSD      (DI), X5
	VFMADD231SD (SI), X4, X5
	VMOVSD      X5, (DI)
	VMOVSD      8(DI), X5
	VFMADD231SD (R8), X4, X5
	VMOVSD      X5, 8(DI)
	VMOVSD      16(DI), X5
	VFMADD231SD (R9), X4, X5
	VMOVSD      X5, 16(DI)
	VMOVSD      24(DI), X5
	VFMADD231SD (R10), X4, X5
	VMOVSD      X5, 24(DI)
	ADDQ $8, CX
	ADDQ $8, SI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	DECQ AX
	JNZ  gttail

gtnext:
	ADDQ $32, DI             // next 4 outputs
	LEAQ (R11)(R15*4), R11   // next 4 weight rows
	DECQ R13
	JNZ  gttile

gtdone:
	VZEROUPPER
	RET

// func gemvT2AVX(dst0, dst1, w, x0, x1 *float64, inDim, outDim int, bias *float64)
//
// Two-row variant of gemvTAVX: dstR[o] = dot(w row o, xR) (+ bias[o]) for
// both input rows at once. Each ymm load of a weight row feeds two FMAs
// (one per input row), so the weight stream — the dominant memory traffic
// when inDim is larger than the cache-resident x vectors — is read once
// per row pair instead of once per row. Per-output arithmetic order is
// identical to gemvTAVX, so results match the single-row kernel bitwise.
// outDim must be a multiple of 4 and inDim >= 1; x1 and dst1 are addressed
// relative to x0/dst0 (delta held in a register) to stay within the
// general-register budget.
TEXT ·gemvT2AVX(SB), NOSPLIT, $0-64
	MOVQ dst0+0(FP), DI
	MOVQ dst1+8(FP), AX
	SUBQ DI, AX              // dst1 = (DI)(AX*1)
	MOVQ w+16(FP), R11
	MOVQ x0+24(FP), CX
	MOVQ x1+32(FP), BX
	SUBQ CX, BX              // x1 = (CX)(BX*1)
	MOVQ inDim+40(FP), DX
	MOVQ outDim+48(FP), R13
	MOVQ bias+56(FP), R14

	SHRQ $2, R13             // output tile count
	JZ   g2done
	MOVQ DX, R15
	SHLQ $3, R15             // weight row stride in bytes

g2tile:
	MOVQ R11, SI             // w row 0
	LEAQ (SI)(R15*1), R8     // w row 1
	LEAQ (R8)(R15*1), R9     // w row 2
	LEAQ (R9)(R15*1), R10    // w row 3

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	MOVQ DX, R12
	SHRQ $2, R12             // number of 4-wide blocks
	JZ   g2reduce

g2loop4:
	VMOVUPD     (CX), Y8
	VMOVUPD     (CX)(BX*1), Y9
	VMOVUPD     (SI), Y10
	VFMADD231PD Y10, Y8, Y0
	VFMADD231PD Y10, Y9, Y4
	VMOVUPD     (R8), Y11
	VFMADD231PD Y11, Y8, Y1
	VFMADD231PD Y11, Y9, Y5
	VMOVUPD     (R9), Y12
	VFMADD231PD Y12, Y8, Y2
	VFMADD231PD Y12, Y9, Y6
	VMOVUPD     (R10), Y13
	VFMADD231PD Y13, Y8, Y3
	VFMADD231PD Y13, Y9, Y7
	ADDQ $32, CX
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	DECQ R12
	JNZ  g2loop4

g2reduce:
	// Transpose-reduce each row's four accumulators (same dance as
	// gemvTAVX, run twice).
	VHADDPD    Y1, Y0, Y10
	VHADDPD    Y3, Y2, Y11
	VPERM2F128 $0x20, Y11, Y10, Y12
	VPERM2F128 $0x31, Y11, Y10, Y13
	VADDPD     Y13, Y12, Y0
	VHADDPD    Y5, Y4, Y10
	VHADDPD    Y7, Y6, Y11
	VPERM2F128 $0x20, Y11, Y10, Y12
	VPERM2F128 $0x31, Y11, Y10, Y13
	VADDPD     Y13, Y12, Y4

	TESTQ   R14, R14
	JZ      g2nobias
	VMOVUPD (R14), Y10
	VADDPD  Y10, Y0, Y0
	VADDPD  Y10, Y4, Y4
	ADDQ    $32, R14

g2nobias:
	VMOVUPD Y0, (DI)
	VMOVUPD Y4, (DI)(AX*1)

	MOVQ DX, R12
	ANDQ $3, R12
	JZ   g2next

g2tail:
	VMOVSD (CX), X8
	VMOVSD (CX)(BX*1), X9

	VMOVSD      (SI), X10
	VMOVSD      (DI), X11
	VFMADD231SD X10, X8, X11
	VMOVSD      X11, (DI)
	VMOVSD      (DI)(AX*1), X11
	VFMADD231SD X10, X9, X11
	VMOVSD      X11, (DI)(AX*1)

	VMOVSD      (R8), X10
	VMOVSD      8(DI), X11
	VFMADD231SD X10, X8, X11
	VMOVSD      X11, 8(DI)
	VMOVSD      8(DI)(AX*1), X11
	VFMADD231SD X10, X9, X11
	VMOVSD      X11, 8(DI)(AX*1)

	VMOVSD      (R9), X10
	VMOVSD      16(DI), X11
	VFMADD231SD X10, X8, X11
	VMOVSD      X11, 16(DI)
	VMOVSD      16(DI)(AX*1), X11
	VFMADD231SD X10, X9, X11
	VMOVSD      X11, 16(DI)(AX*1)

	VMOVSD      (R10), X10
	VMOVSD      24(DI), X11
	VFMADD231SD X10, X8, X11
	VMOVSD      X11, 24(DI)
	VMOVSD      24(DI)(AX*1), X11
	VFMADD231SD X10, X9, X11
	VMOVSD      X11, 24(DI)(AX*1)

	ADDQ $8, CX
	ADDQ $8, SI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	DECQ R12
	JNZ  g2tail

g2next:
	SUBQ R15, CX             // rewind the x0 cursor to the row start
	ADDQ $32, DI             // next 4 outputs
	LEAQ (R11)(R15*4), R11   // next 4 weight rows
	DECQ R13
	JNZ  g2tile

g2done:
	VZEROUPPER
	RET

// Replicated (4x8 byte) constants for the vector sigmoid kernel: sign
// mask, exp clamp bounds, Cody-Waite range-reduction constants, 1.0, the
// Taylor coefficients 1/k! for k=2..11, and the IEEE-754 exponent bias as
// four int64 lanes.
#define SIGN    0
#define CLAMPHI 32
#define CLAMPLO 64
#define LOG2E   96
#define LN2HI   128
#define LN2LO   160
#define ONE     192
#define C2      224
#define C3      256
#define C4      288
#define C5      320
#define C6      352
#define C7      384
#define C8      416
#define C9      448
#define C10     480
#define C11     512
#define BIAS    544

DATA sigconst<>+0(SB)/8, $0x8000000000000000
DATA sigconst<>+8(SB)/8, $0x8000000000000000
DATA sigconst<>+16(SB)/8, $0x8000000000000000
DATA sigconst<>+24(SB)/8, $0x8000000000000000
DATA sigconst<>+32(SB)/8, $0x4086200000000000 // 708.0
DATA sigconst<>+40(SB)/8, $0x4086200000000000
DATA sigconst<>+48(SB)/8, $0x4086200000000000
DATA sigconst<>+56(SB)/8, $0x4086200000000000
DATA sigconst<>+64(SB)/8, $0xc086200000000000 // -708.0
DATA sigconst<>+72(SB)/8, $0xc086200000000000
DATA sigconst<>+80(SB)/8, $0xc086200000000000
DATA sigconst<>+88(SB)/8, $0xc086200000000000
DATA sigconst<>+96(SB)/8, $0x3ff71547652b82fe // log2(e)
DATA sigconst<>+104(SB)/8, $0x3ff71547652b82fe
DATA sigconst<>+112(SB)/8, $0x3ff71547652b82fe
DATA sigconst<>+120(SB)/8, $0x3ff71547652b82fe
DATA sigconst<>+128(SB)/8, $0x3fe62e42fee00000 // ln2 high bits
DATA sigconst<>+136(SB)/8, $0x3fe62e42fee00000
DATA sigconst<>+144(SB)/8, $0x3fe62e42fee00000
DATA sigconst<>+152(SB)/8, $0x3fe62e42fee00000
DATA sigconst<>+160(SB)/8, $0x3dea39ef35793c76 // ln2 low bits
DATA sigconst<>+168(SB)/8, $0x3dea39ef35793c76
DATA sigconst<>+176(SB)/8, $0x3dea39ef35793c76
DATA sigconst<>+184(SB)/8, $0x3dea39ef35793c76
DATA sigconst<>+192(SB)/8, $0x3ff0000000000000 // 1.0
DATA sigconst<>+200(SB)/8, $0x3ff0000000000000
DATA sigconst<>+208(SB)/8, $0x3ff0000000000000
DATA sigconst<>+216(SB)/8, $0x3ff0000000000000
DATA sigconst<>+224(SB)/8, $0x3fe0000000000000 // 1/2!
DATA sigconst<>+232(SB)/8, $0x3fe0000000000000
DATA sigconst<>+240(SB)/8, $0x3fe0000000000000
DATA sigconst<>+248(SB)/8, $0x3fe0000000000000
DATA sigconst<>+256(SB)/8, $0x3fc5555555555555 // 1/3!
DATA sigconst<>+264(SB)/8, $0x3fc5555555555555
DATA sigconst<>+272(SB)/8, $0x3fc5555555555555
DATA sigconst<>+280(SB)/8, $0x3fc5555555555555
DATA sigconst<>+288(SB)/8, $0x3fa5555555555555 // 1/4!
DATA sigconst<>+296(SB)/8, $0x3fa5555555555555
DATA sigconst<>+304(SB)/8, $0x3fa5555555555555
DATA sigconst<>+312(SB)/8, $0x3fa5555555555555
DATA sigconst<>+320(SB)/8, $0x3f81111111111111 // 1/5!
DATA sigconst<>+328(SB)/8, $0x3f81111111111111
DATA sigconst<>+336(SB)/8, $0x3f81111111111111
DATA sigconst<>+344(SB)/8, $0x3f81111111111111
DATA sigconst<>+352(SB)/8, $0x3f56c16c16c16c17 // 1/6!
DATA sigconst<>+360(SB)/8, $0x3f56c16c16c16c17
DATA sigconst<>+368(SB)/8, $0x3f56c16c16c16c17
DATA sigconst<>+376(SB)/8, $0x3f56c16c16c16c17
DATA sigconst<>+384(SB)/8, $0x3f2a01a01a01a01a // 1/7!
DATA sigconst<>+392(SB)/8, $0x3f2a01a01a01a01a
DATA sigconst<>+400(SB)/8, $0x3f2a01a01a01a01a
DATA sigconst<>+408(SB)/8, $0x3f2a01a01a01a01a
DATA sigconst<>+416(SB)/8, $0x3efa01a01a01a01a // 1/8!
DATA sigconst<>+424(SB)/8, $0x3efa01a01a01a01a
DATA sigconst<>+432(SB)/8, $0x3efa01a01a01a01a
DATA sigconst<>+440(SB)/8, $0x3efa01a01a01a01a
DATA sigconst<>+448(SB)/8, $0x3ec71de3a556c734 // 1/9!
DATA sigconst<>+456(SB)/8, $0x3ec71de3a556c734
DATA sigconst<>+464(SB)/8, $0x3ec71de3a556c734
DATA sigconst<>+472(SB)/8, $0x3ec71de3a556c734
DATA sigconst<>+480(SB)/8, $0x3e927e4fb7789f5c // 1/10!
DATA sigconst<>+488(SB)/8, $0x3e927e4fb7789f5c
DATA sigconst<>+496(SB)/8, $0x3e927e4fb7789f5c
DATA sigconst<>+504(SB)/8, $0x3e927e4fb7789f5c
DATA sigconst<>+512(SB)/8, $0x3e5ae64567f544e4 // 1/11!
DATA sigconst<>+520(SB)/8, $0x3e5ae64567f544e4
DATA sigconst<>+528(SB)/8, $0x3e5ae64567f544e4
DATA sigconst<>+536(SB)/8, $0x3e5ae64567f544e4
DATA sigconst<>+544(SB)/8, $1023 // IEEE-754 double exponent bias
DATA sigconst<>+552(SB)/8, $1023
DATA sigconst<>+560(SB)/8, $1023
DATA sigconst<>+568(SB)/8, $1023
GLOBL sigconst<>(SB), RODATA|NOPTR, $576

// func gluAVX(dst, u, v *float64, n int)
//
// dst[i] = u[i] / (1 + exp(-v[i])) — the gated linear unit u ⊙ σ(v), with
// the gate multiply folded into the sigmoid's division — for i = 0..n-1;
// n must be a multiple of 8 (the Go wrapper peels the tail). Two
// interleaved 4-lane chains hide the FMA latency of the Horner
// polynomial.
//
// exp(t) is computed by Cody-Waite range reduction (t = k*ln2 + r,
// |r| <= ln2/2) and an 11-term Taylor polynomial in r, then scaled by 2^k
// built from integer exponent bits. t is clamped to [-708, 708] before
// reduction, so the gate saturates smoothly at 0/1 instead of
// overflowing; NaN gates also saturate (upstream feature validation
// rejects NaNs before they can reach a model forward pass). Gate relative
// error vs math.Exp is < 1e-11, far inside the 1e-9 inference-parity
// budget.
TEXT ·gluAVX(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ u+8(FP), BX
	MOVQ v+16(FP), SI
	MOVQ n+24(FP), DX

	SHRQ $3, DX
	JZ   sgdone

sgloop:
	// t = clamp(-x, -708, 708)
	VMOVUPD (SI), Y0
	VMOVUPD 32(SI), Y4
	VXORPD  sigconst<>+SIGN(SB), Y0, Y0
	VXORPD  sigconst<>+SIGN(SB), Y4, Y4
	VMINPD  sigconst<>+CLAMPHI(SB), Y0, Y0
	VMINPD  sigconst<>+CLAMPHI(SB), Y4, Y4
	VMAXPD  sigconst<>+CLAMPLO(SB), Y0, Y0
	VMAXPD  sigconst<>+CLAMPLO(SB), Y4, Y4

	// n = round(t * log2e); r = t - n*ln2hi - n*ln2lo
	VMULPD       sigconst<>+LOG2E(SB), Y0, Y2
	VMULPD       sigconst<>+LOG2E(SB), Y4, Y6
	VROUNDPD     $0, Y2, Y2
	VROUNDPD     $0, Y6, Y6
	VFNMADD231PD sigconst<>+LN2HI(SB), Y2, Y0
	VFNMADD231PD sigconst<>+LN2HI(SB), Y6, Y4
	VFNMADD231PD sigconst<>+LN2LO(SB), Y2, Y0
	VFNMADD231PD sigconst<>+LN2LO(SB), Y6, Y4

	// p = exp(r) by Horner over the Taylor coefficients. The chain stops
	// at r^9/9!: with |r| <= ln2/2 the first dropped term is below 1e-11
	// relative, still two decades inside the 1e-9 parity budget.
	VMOVUPD     sigconst<>+C9(SB), Y1
	VMOVUPD     sigconst<>+C9(SB), Y5
	VFMADD213PD sigconst<>+C8(SB), Y0, Y1
	VFMADD213PD sigconst<>+C8(SB), Y4, Y5
	VFMADD213PD sigconst<>+C7(SB), Y0, Y1
	VFMADD213PD sigconst<>+C7(SB), Y4, Y5
	VFMADD213PD sigconst<>+C6(SB), Y0, Y1
	VFMADD213PD sigconst<>+C6(SB), Y4, Y5
	VFMADD213PD sigconst<>+C5(SB), Y0, Y1
	VFMADD213PD sigconst<>+C5(SB), Y4, Y5
	VFMADD213PD sigconst<>+C4(SB), Y0, Y1
	VFMADD213PD sigconst<>+C4(SB), Y4, Y5
	VFMADD213PD sigconst<>+C3(SB), Y0, Y1
	VFMADD213PD sigconst<>+C3(SB), Y4, Y5
	VFMADD213PD sigconst<>+C2(SB), Y0, Y1
	VFMADD213PD sigconst<>+C2(SB), Y4, Y5
	VFMADD213PD sigconst<>+ONE(SB), Y0, Y1
	VFMADD213PD sigconst<>+ONE(SB), Y4, Y5
	VFMADD213PD sigconst<>+ONE(SB), Y0, Y1
	VFMADD213PD sigconst<>+ONE(SB), Y4, Y5

	// exp(t) = p * 2^n; 2^n assembled from integer exponent bits.
	VCVTPD2DQY Y2, X8
	VPMOVSXDQ  X8, Y8
	VPADDQ     sigconst<>+BIAS(SB), Y8, Y8
	VPSLLQ     $52, Y8, Y8
	VMULPD     Y8, Y1, Y1
	VCVTPD2DQY Y6, X9
	VPMOVSXDQ  X9, Y9
	VPADDQ     sigconst<>+BIAS(SB), Y9, Y9
	VPSLLQ     $52, Y9, Y9
	VMULPD     Y9, Y5, Y5

	// glu = u / (1 + exp(-v))
	VADDPD  sigconst<>+ONE(SB), Y1, Y1
	VADDPD  sigconst<>+ONE(SB), Y5, Y5
	VMOVUPD (BX), Y3
	VMOVUPD 32(BX), Y7
	VDIVPD  Y1, Y3, Y0
	VDIVPD  Y5, Y7, Y4
	VMOVUPD Y0, (DI)
	VMOVUPD Y4, 32(DI)

	ADDQ $64, SI
	ADDQ $64, BX
	ADDQ $64, DI
	DECQ DX
	JNZ  sgloop

sgdone:
	VZEROUPPER
	RET

// func scaleShiftReLUAVX(x, scale, shift *float64, n int)
//
// x[i] = max(0, x[i]*scale[i] + shift[i]) — an eval-mode batch-norm
// folded to one FMA per element, fused with the following ReLU. NaN
// propagates (max keeps the NaN operand in the value position), matching
// the scalar "if v < 0 { v = 0 }".
TEXT ·scaleShiftReLUAVX(SB), NOSPLIT, $0-32
	MOVQ   x+0(FP), DI
	MOVQ   scale+8(FP), SI
	MOVQ   shift+16(FP), CX
	MOVQ   n+24(FP), DX
	VXORPD Y0, Y0, Y0

	MOVQ DX, BX
	SHRQ $2, BX
	JZ   ssrtail

ssrloop:
	VMOVUPD     (DI), Y1
	VMOVUPD     (SI), Y2
	VFMADD213PD (CX), Y2, Y1
	VMAXPD      Y1, Y0, Y1
	VMOVUPD     Y1, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, CX
	DECQ BX
	JNZ  ssrloop

ssrtail:
	ANDQ $3, DX
	JZ   ssrdone

ssrtail1:
	VMOVSD      (DI), X1
	VMOVSD      (SI), X2
	VFMADD213SD (CX), X2, X1
	VMAXSD      X1, X0, X1
	VMOVSD      X1, (DI)
	ADDQ $8, DI
	ADDQ $8, SI
	ADDQ $8, CX
	DECQ DX
	JNZ  ssrtail1

ssrdone:
	VZEROUPPER
	RET

// func scaleShiftIntoAVX(dst, x, scale, shift *float64, n int)
//
// dst[i] = x[i]*scale[i] + shift[i] — one fused multiply-add per element
// (input standardization with a cached reciprocal-std scale).
TEXT ·scaleShiftIntoAVX(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ scale+16(FP), CX
	MOVQ shift+24(FP), R8
	MOVQ n+32(FP), DX

	MOVQ DX, BX
	SHRQ $2, BX
	JZ   ssitail

ssiloop:
	VMOVUPD     (SI), Y1
	VMOVUPD     (CX), Y2
	VFMADD213PD (R8), Y2, Y1
	VMOVUPD     Y1, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, CX
	ADDQ $32, R8
	DECQ BX
	JNZ  ssiloop

ssitail:
	ANDQ $3, DX
	JZ   ssidone

ssitail1:
	VMOVSD      (SI), X1
	VMOVSD      (CX), X2
	VFMADD213SD (R8), X2, X1
	VMOVSD      X1, (DI)
	ADDQ $8, DI
	ADDQ $8, SI
	ADDQ $8, CX
	ADDQ $8, R8
	DECQ DX
	JNZ  ssitail1

ssidone:
	VZEROUPPER
	RET

// func scaleMaxAVX(v, scale *float64, n int) float64
//
// v[i] *= scale[i] in place; returns max(v). n must be >= 4 (the Go
// wrapper handles smaller inputs). NaN handling follows MAXPD (the second
// operand wins), so callers must not feed NaNs — upstream validation
// guarantees that on the model hot path.
TEXT ·scaleMaxAVX(SB), NOSPLIT, $0-32
	MOVQ v+0(FP), DI
	MOVQ scale+8(FP), SI
	MOVQ n+16(FP), DX

	// First chunk seeds the running max.
	VMOVUPD (DI), Y1
	VMULPD  (SI), Y1, Y1
	VMOVUPD Y1, (DI)
	VMOVAPD Y1, Y0
	ADDQ    $32, DI
	ADDQ    $32, SI
	SUBQ    $4, DX

	MOVQ DX, BX
	SHRQ $2, BX
	JZ   smtail

smloop:
	VMOVUPD (DI), Y1
	VMULPD  (SI), Y1, Y1
	VMOVUPD Y1, (DI)
	VMAXPD  Y1, Y0, Y0
	ADDQ $32, DI
	ADDQ $32, SI
	DECQ BX
	JNZ  smloop

smtail:
	VEXTRACTF128 $1, Y0, X1
	VMAXPD       X1, X0, X0
	VSHUFPD      $1, X0, X0, X1
	VMAXSD       X1, X0, X0

	ANDQ $3, DX
	JZ   smdone

smtail1:
	VMOVSD (DI), X1
	VMULSD (SI), X1, X1
	VMOVSD X1, (DI)
	VMAXSD X1, X0, X0
	ADDQ $8, DI
	ADDQ $8, SI
	DECQ DX
	JNZ  smtail1

smdone:
	VZEROUPPER
	MOVSD X0, ret+24(FP)
	RET

// func maskGreaterAVX(v *float64, lim float64, n int) uint64
//
// Returns a bitmask with bit i set when v[i] > lim (ordered, quiet — NaN
// compares false, like the Go > operator), for the n &^ 3 prefix; the Go
// wrapper handles the tail lanes.
TEXT ·maskGreaterAVX(SB), NOSPLIT, $0-32
	MOVQ         v+0(FP), DI
	VBROADCASTSD lim+8(FP), Y0
	MOVQ         n+16(FP), DX

	XORQ R8, R8
	XORQ CX, CX
	MOVQ DX, BX
	SHRQ $2, BX
	JZ   mgdone

mgloop:
	VMOVUPD   (DI), Y1
	VCMPPD    $0x1e, Y0, Y1, Y2
	VMOVMSKPD Y2, AX
	SHLQ      CL, AX
	ORQ       AX, R8
	ADDQ $4, CX
	ADDQ $32, DI
	DECQ BX
	JNZ  mgloop

mgdone:
	VZEROUPPER
	MOVQ R8, ret+24(FP)
	RET

// func scaleAVX(alpha float64, x *float64, n int)
//
// x[i] *= alpha.
TEXT ·scaleAVX(SB), NOSPLIT, $0-24
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ         x+8(FP), DI
	MOVQ         n+16(FP), DX

	MOVQ DX, BX
	SHRQ $3, BX
	JZ   sl4

slloop:
	VMULPD  (DI), Y0, Y1
	VMULPD  32(DI), Y0, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ $64, DI
	DECQ BX
	JNZ  slloop

sl4:
	TESTQ $4, DX
	JZ    sltail
	VMULPD  (DI), Y0, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, DI

sltail:
	ANDQ $3, DX
	JZ   sldone

sltail1:
	VMULSD (DI), X0, X1
	VMOVSD X1, (DI)
	ADDQ $8, DI
	DECQ DX
	JNZ  sltail1

sldone:
	VZEROUPPER
	RET

// func reluAVX(x *float64, n int)
//
// x[i] = max(0, x[i]); NaN propagates like the scalar comparison.
TEXT ·reluAVX(SB), NOSPLIT, $0-16
	MOVQ   x+0(FP), DI
	MOVQ   n+8(FP), DX
	VXORPD Y0, Y0, Y0

	MOVQ DX, BX
	SHRQ $3, BX
	JZ   rlblock4

rlloop8:
	VMAXPD  (DI), Y0, Y1
	VMAXPD  32(DI), Y0, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ $64, DI
	DECQ BX
	JNZ  rlloop8

rlblock4:
	TESTQ $4, DX
	JZ    rltailsetup
	VMAXPD  (DI), Y0, Y1
	VMOVUPD Y1, (DI)
	ADDQ $32, DI

rltailsetup:
	ANDQ $3, DX
	JZ   rldone

rltail:
	VMAXSD  (DI), X0, X1
	VMOVSD  X1, (DI)
	ADDQ $8, DI
	DECQ DX
	JNZ  rltail

rldone:
	VZEROUPPER
	RET

// func dotAVX(a, b *float64, n int) float64
//
// Inner product with two 4-lane FMA accumulator chains; the <8 element
// tail accumulates scalar FMAs into the reduced sum.
TEXT ·dotAVX(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), DX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1

	MOVQ DX, BX
	SHRQ $3, BX
	JZ   dtblock4

dtloop8:
	VMOVUPD     (SI), Y2
	VMOVUPD     32(SI), Y3
	VFMADD231PD (DI), Y2, Y0
	VFMADD231PD 32(DI), Y3, Y1
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ BX
	JNZ  dtloop8

dtblock4:
	TESTQ $4, DX
	JZ    dtreduce
	VMOVUPD     (SI), Y2
	VFMADD231PD (DI), Y2, Y0
	ADDQ $32, SI
	ADDQ $32, DI

dtreduce:
	VADDPD       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VHADDPD      X0, X0, X0

	ANDQ $3, DX
	JZ   dtdone

dttail:
	VMOVSD      (SI), X2
	VFMADD231SD (DI), X2, X0
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ DX
	JNZ  dttail

dtdone:
	VZEROUPPER
	MOVSD X0, ret+24(FP)
	RET

// func axpyAVX(alpha float64, x, y *float64, n int)
//
// y[i] += alpha * x[i]. Per-element accumulation order matches the scalar
// loop; only the intermediate product rounding differs (fused).
TEXT ·axpyAVX(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ         x+8(FP), SI
	MOVQ         y+16(FP), DI
	MOVQ         n+24(FP), DX

	MOVQ DX, BX
	SHRQ $3, BX
	JZ   axblock4

axloop8:
	VMOVUPD     (SI), Y1
	VMOVUPD     32(SI), Y2
	VFMADD213PD (DI), Y0, Y1
	VFMADD213PD 32(DI), Y0, Y2
	VMOVUPD     Y1, (DI)
	VMOVUPD     Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ BX
	JNZ  axloop8

axblock4:
	TESTQ $4, DX
	JZ    axtailsetup
	VMOVUPD     (SI), Y1
	VFMADD213PD (DI), Y0, Y1
	VMOVUPD     Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI

axtailsetup:
	ANDQ $3, DX
	JZ   axdone

axtail:
	VMOVSD      (SI), X1
	VMOVSD      (DI), X2
	VFMADD231SD X1, X0, X2
	VMOVSD      X2, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ DX
	JNZ  axtail

axdone:
	VZEROUPPER
	RET

// func axpy2AVX(a0, a1 float64, x0, x1, y *float64, n int)
//
// y[i] += a0*x0[i] + a1*x1[i] in one pass over y — the paired rank-1
// update behind GemmTA/Gemm: two fused multiply-adds per load/store of y,
// halving the y traffic of two Axpy calls. Per element the a0 term is
// accumulated before the a1 term, matching the scalar fallback; only the
// intermediate product rounding differs (fused).
TEXT ·axpy2AVX(SB), NOSPLIT, $0-48
	VBROADCASTSD a0+0(FP), Y0
	VBROADCASTSD a1+8(FP), Y1
	MOVQ         x0+16(FP), SI
	MOVQ         x1+24(FP), BX
	MOVQ         y+32(FP), DI
	MOVQ         n+40(FP), DX

	MOVQ DX, CX
	SHRQ $3, CX
	JZ   a2block4

a2loop8:
	VMOVUPD     (DI), Y2
	VMOVUPD     32(DI), Y3
	VFMADD231PD (SI), Y0, Y2
	VFMADD231PD 32(SI), Y0, Y3
	VFMADD231PD (BX), Y1, Y2
	VFMADD231PD 32(BX), Y1, Y3
	VMOVUPD     Y2, (DI)
	VMOVUPD     Y3, 32(DI)
	ADDQ $64, SI
	ADDQ $64, BX
	ADDQ $64, DI
	DECQ CX
	JNZ  a2loop8

a2block4:
	TESTQ $4, DX
	JZ    a2tailsetup
	VMOVUPD     (DI), Y2
	VFMADD231PD (SI), Y0, Y2
	VFMADD231PD (BX), Y1, Y2
	VMOVUPD     Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, BX
	ADDQ $32, DI

a2tailsetup:
	ANDQ $3, DX
	JZ   a2done

a2tail:
	VMOVSD      (DI), X2
	VMOVSD      (SI), X3
	VFMADD231SD X3, X0, X2
	VMOVSD      (BX), X3
	VFMADD231SD X3, X1, X2
	VMOVSD      X2, (DI)
	ADDQ $8, SI
	ADDQ $8, BX
	ADDQ $8, DI
	DECQ DX
	JNZ  a2tail

a2done:
	VZEROUPPER
	RET

// func mulAVX(x, y *float64, n int)
//
// x[i] *= y[i]. n is a multiple of 4 (the Go wrapper finishes the tail).
TEXT ·mulAVX(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), DI
	MOVQ y+8(FP), SI
	MOVQ n+16(FP), DX

	MOVQ DX, BX
	SHRQ $3, BX
	JZ   mlblock4

mlloop8:
	VMOVUPD (DI), Y1
	VMOVUPD 32(DI), Y2
	VMULPD  (SI), Y1, Y1
	VMULPD  32(SI), Y2, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ BX
	JNZ  mlloop8

mlblock4:
	TESTQ $4, DX
	JZ    mldone
	VMOVUPD (DI), Y1
	VMULPD  (SI), Y1, Y1
	VMOVUPD Y1, (DI)

mldone:
	VZEROUPPER
	RET

// func mulAccAVX(acc, a, b *float64, n int)
//
// acc[i] += a[i]*b[i] (fused). n is a multiple of 4.
TEXT ·mulAccAVX(SB), NOSPLIT, $0-32
	MOVQ acc+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), CX
	MOVQ n+24(FP), DX

	MOVQ DX, BX
	SHRQ $3, BX
	JZ   mablock4

maloop8:
	VMOVUPD     (DI), Y1
	VMOVUPD     32(DI), Y2
	VMOVUPD     (SI), Y3
	VMOVUPD     32(SI), Y4
	VFMADD231PD (CX), Y3, Y1
	VFMADD231PD 32(CX), Y4, Y2
	VMOVUPD     Y1, (DI)
	VMOVUPD     Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, CX
	ADDQ $64, DI
	DECQ BX
	JNZ  maloop8

mablock4:
	TESTQ $4, DX
	JZ    madone
	VMOVUPD     (DI), Y1
	VMOVUPD     (SI), Y3
	VFMADD231PD (CX), Y3, Y1
	VMOVUPD     Y1, (DI)

madone:
	VZEROUPPER
	RET

// func reluMaskAVX(x, mask *float64, n int)
//
// mask[i] = 1 if x[i] > 0 else 0; x is rectified by ANDing with the
// compare mask, so a NaN lane zeroes exactly like the scalar loop.
// n is a multiple of 4.
TEXT ·reluMaskAVX(SB), NOSPLIT, $0-24
	MOVQ   x+0(FP), DI
	MOVQ   mask+8(FP), SI
	MOVQ   n+16(FP), DX
	VXORPD Y14, Y14, Y14
	MOVQ   $0x3FF0000000000000, AX
	MOVQ   AX, X15
	VBROADCASTSD X15, Y15

	MOVQ DX, BX
	SHRQ $2, BX
	JZ   rmdone

rmloop:
	VMOVUPD (DI), Y1
	VCMPPD  $0x1e, Y14, Y1, Y2
	VANDPD  Y15, Y2, Y3
	VMOVUPD Y3, (SI)
	VANDPD  Y2, Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ BX
	JNZ  rmloop

rmdone:
	VZEROUPPER
	RET

// func sqDiffAccAVX(acc, x, mean *float64, n int)
//
// acc[i] += (x[i]-mean[i])^2 (fused square). n is a multiple of 4.
TEXT ·sqDiffAccAVX(SB), NOSPLIT, $0-32
	MOVQ acc+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ mean+16(FP), CX
	MOVQ n+24(FP), DX

	MOVQ DX, BX
	SHRQ $2, BX
	JZ   sddone

sdloop:
	VMOVUPD     (SI), Y1
	VSUBPD      (CX), Y1, Y1
	VMOVUPD     (DI), Y2
	VFMADD231PD Y1, Y1, Y2
	VMOVUPD     Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, CX
	ADDQ $32, DI
	DECQ BX
	JNZ  sdloop

sddone:
	VZEROUPPER
	RET

// func bnApplyAVX(x, xhat, mean, invStd, gamma, beta *float64, n int)
//
// xhat[i] = (x[i]-mean[i])*invStd[i]; x[i] = gamma[i]*xhat[i]+beta[i]
// (the affine term fused). n is a multiple of 4.
TEXT ·bnApplyAVX(SB), NOSPLIT, $0-56
	MOVQ x+0(FP), DI
	MOVQ xhat+8(FP), SI
	MOVQ mean+16(FP), DX
	MOVQ invStd+24(FP), CX
	MOVQ gamma+32(FP), R8
	MOVQ beta+40(FP), R9
	MOVQ n+48(FP), R10

	MOVQ R10, BX
	SHRQ $2, BX
	JZ   badone

baloop:
	VMOVUPD     (DI), Y1
	VSUBPD      (DX), Y1, Y1
	VMULPD      (CX), Y1, Y1
	VMOVUPD     Y1, (SI)
	VMOVUPD     (R9), Y2
	VFMADD231PD (R8), Y1, Y2
	VMOVUPD     Y2, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, CX
	ADDQ $32, R8
	ADDQ $32, R9
	DECQ BX
	JNZ  baloop

badone:
	VZEROUPPER
	RET

// func bnBackApplyAVX(out, grad, xhat, c1, c2, c3 *float64, n int)
//
// out[i] = c1[i]*(g[i] - c2[i] - xhat[i]*c3[i]) (the xhat*c3 subtraction
// fused). n is a multiple of 4.
TEXT ·bnBackApplyAVX(SB), NOSPLIT, $0-56
	MOVQ out+0(FP), DI
	MOVQ grad+8(FP), SI
	MOVQ xhat+16(FP), DX
	MOVQ c1+24(FP), CX
	MOVQ c2+32(FP), R8
	MOVQ c3+40(FP), R9
	MOVQ n+48(FP), R10

	MOVQ R10, BX
	SHRQ $2, BX
	JZ   bbdone

bbloop:
	VMOVUPD      (SI), Y1
	VSUBPD       (R8), Y1, Y1
	VMOVUPD      (DX), Y2
	VFNMADD231PD (R9), Y2, Y1
	VMULPD       (CX), Y1, Y1
	VMOVUPD      Y1, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, CX
	ADDQ $32, R8
	ADDQ $32, R9
	DECQ BX
	JNZ  bbloop

bbdone:
	VZEROUPPER
	RET

// func adamStepAVX(w, m, v, grad *float64, n int, consts *float64)
//
// One Adam update; consts is {b1, 1-b1, b2, 1-b2, 1/c1, 1/c2, lr, eps}.
// The moment blends are fused; bias correction is reciprocal-multiply as
// in the scalar fallback. n is a multiple of 4.
TEXT ·adamStepAVX(SB), NOSPLIT, $0-48
	MOVQ w+0(FP), DI
	MOVQ m+8(FP), SI
	MOVQ v+16(FP), DX
	MOVQ grad+24(FP), CX
	MOVQ n+32(FP), R9
	MOVQ consts+40(FP), R8

	VBROADCASTSD (R8), Y8       // b1
	VBROADCASTSD 8(R8), Y9      // 1-b1
	VBROADCASTSD 16(R8), Y10    // b2
	VBROADCASTSD 24(R8), Y11    // 1-b2
	VBROADCASTSD 32(R8), Y12    // 1/c1
	VBROADCASTSD 40(R8), Y13    // 1/c2
	VBROADCASTSD 48(R8), Y14    // lr
	VBROADCASTSD 56(R8), Y15    // eps

	MOVQ R9, BX
	SHRQ $2, BX
	JZ   asdone

asloop:
	VMOVUPD     (CX), Y1        // g
	VMULPD      (SI), Y8, Y2    // b1*m
	VFMADD231PD Y1, Y9, Y2      // m' = b1*m + (1-b1)*g
	VMOVUPD     Y2, (SI)
	VMULPD      (DX), Y10, Y3   // b2*v
	VMULPD      Y1, Y1, Y4      // g*g
	VFMADD231PD Y4, Y11, Y3     // v' = b2*v + (1-b2)*g*g
	VMOVUPD     Y3, (DX)
	VMULPD      Y13, Y3, Y5     // v'/c2
	VSQRTPD     Y5, Y5
	VADDPD      Y15, Y5, Y5     // sqrt(v'/c2) + eps
	VMULPD      Y12, Y2, Y6     // m'/c1
	VMULPD      Y14, Y6, Y6     // *lr
	VDIVPD      Y5, Y6, Y6
	VMOVUPD     (DI), Y7
	VSUBPD      Y6, Y7, Y7
	VMOVUPD     Y7, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, CX
	DECQ BX
	JNZ  asloop

asdone:
	VZEROUPPER
	RET

// func dropoutApplyAVX(x, mask, u *float64, keep, invKeep float64, n int)
//
// Where u[i] < keep: x[i] *= invKeep, mask[i] *= invKeep; elsewhere both
// zero (scale then AND with the compare mask). n is a multiple of 4.
TEXT ·dropoutApplyAVX(SB), NOSPLIT, $0-48
	MOVQ         x+0(FP), DI
	MOVQ         mask+8(FP), SI
	MOVQ         u+16(FP), CX
	VBROADCASTSD keep+24(FP), Y8
	VBROADCASTSD invKeep+32(FP), Y9
	MOVQ         n+40(FP), DX

	MOVQ DX, BX
	SHRQ $2, BX
	JZ   dadone

daloop:
	VMOVUPD (CX), Y1
	VCMPPD  $0x11, Y8, Y1, Y2
	VMOVUPD (SI), Y3
	VMULPD  Y9, Y3, Y3
	VANDPD  Y2, Y3, Y3
	VMOVUPD Y3, (SI)
	VMOVUPD (DI), Y4
	VMULPD  Y9, Y4, Y4
	VANDPD  Y2, Y4, Y4
	VMOVUPD Y4, (DI)
	ADDQ $32, CX
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ BX
	JNZ  daloop

dadone:
	VZEROUPPER
	RET

// func subAVX(dst, a, b *float64, n int)
//
// dst[i] = a[i] - b[i]. n is a multiple of 4 (the Go wrapper finishes the
// tail).
TEXT ·subAVX(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX

	MOVQ CX, BX
	SHRQ $3, BX
	JZ   sbblock4

sbloop8:
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VSUBPD  (DX), Y1, Y1
	VSUBPD  32(DX), Y2, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DX
	ADDQ $64, DI
	DECQ BX
	JNZ  sbloop8

sbblock4:
	TESTQ $4, CX
	JZ    sbdone
	VMOVUPD (SI), Y1
	VSUBPD  (DX), Y1, Y1
	VMOVUPD Y1, (DI)

sbdone:
	VZEROUPPER
	RET
