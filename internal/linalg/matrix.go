// Package linalg provides the small dense linear-algebra kernel the AIIO
// models need: vectors, row-major matrices with parallel multiplication,
// Cholesky and LU solvers, and (weighted) ridge least squares. Everything is
// float64 and allocation-conscious; parallel paths use a bounded worker pool
// sized by GOMAXPROCS.
package linalg

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// parallelRows runs fn over row ranges [lo, hi) on up to GOMAXPROCS workers.
func parallelRows(rows int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 || rows < 64 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// mulKBlock is the k-dimension tile of the blocked Mul kernel: a block of
// b's rows small enough to stay cache-resident while every row of the
// current a block streams against it.
const mulKBlock = 256

// Mul computes a*b in parallel across row blocks. Within a block the k
// dimension is tiled so the touched rows of b stay cache-resident across
// consecutive rows of a; per output element the k-accumulation order is
// unchanged, so the result is bitwise-identical to the untiled kernel.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes dst = a*b without allocating, reusing dst's backing
// (dst must be a.Rows x b.Cols; its prior contents are overwritten).
func MulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MulInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := dst.Row(i)
			for j := range orow {
				orow[j] = 0
			}
		}
		for klo := 0; klo < a.Cols; klo += mulKBlock {
			khi := klo + mulKBlock
			if khi > a.Cols {
				khi = a.Cols
			}
			for i := lo; i < hi; i++ {
				arow := a.Row(i)
				orow := dst.Row(i)
				// k-major inner loops keep b accesses sequential.
				for k := klo; k < khi; k++ {
					av := arow[k]
					if av == 0 {
						continue
					}
					brow := b.Row(k)
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	})
	return dst
}

// MulT computes a*bᵀ: a is n×k, bt is m×k (each row of bt is one output
// "unit"), and the result is n×m. This is the dense-layer product shape
// (x·Wᵀ for row-major-by-output weights) and runs on the tiled GemvT
// kernel.
func MulT(a, bt *Matrix) *Matrix {
	out := NewMatrix(a.Rows, bt.Rows)
	return MulTInto(out, a, bt, nil)
}

// MulTInto computes dst = a*bᵀ (+ bias broadcast per row when bias is
// non-nil) without allocating. dst must be a.Rows x bt.Rows.
func MulTInto(dst, a, bt *Matrix, bias []float64) *Matrix {
	if a.Cols != bt.Cols {
		panic(fmt.Sprintf("linalg: MulT dimension mismatch %dx%d * (%dx%d)ᵀ", a.Rows, a.Cols, bt.Rows, bt.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != bt.Rows {
		panic(fmt.Sprintf("linalg: MulTInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, bt.Rows))
	}
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			GemvT(dst.Row(i), bt.Data, bt.Rows, bt.Cols, a.Row(i), bias)
		}
	})
	return dst
}

// The vector micro-kernels. On amd64 with AVX2+FMA support the init in
// gemv_amd64.go installs the assembly versions; nil means the portable
// scalar paths run instead.
var (
	// gemvTKernel computes dst[o] = w_row_o · x (+bias) for outDim
	// outputs (outDim a multiple of 4) with fused multiply-adds.
	gemvTKernel func(dst, w, x *float64, inDim, outDim int, bias *float64)
	// gemvT2Kernel is the two-input-row variant sharing the weight stream.
	gemvT2Kernel func(dst0, dst1, w, x0, x1 *float64, inDim, outDim int, bias *float64)
	// gluKernel computes dst[i] = u[i]/(1+exp(-v[i])) for n a multiple
	// of 8, with a polynomial exp accurate to ~1e-13 relative.
	gluKernel func(dst, u, v *float64, n int)
	// scaleShiftReLUKernel computes x[i] = max(0, x[i]*scale[i]+shift[i]).
	scaleShiftReLUKernel func(x, scale, shift *float64, n int)
	// scaleShiftIntoKernel computes dst[i] = x[i]*scale[i]+shift[i].
	scaleShiftIntoKernel func(dst, x, scale, shift *float64, n int)
	// scaleMaxKernel computes v[i] *= scale[i] in place and returns max(v);
	// requires n >= 4.
	scaleMaxKernel func(v, scale *float64, n int) float64
	// maskGreaterKernel returns a bitmask of lanes with v[i] > lim for the
	// n &^ 3 prefix.
	maskGreaterKernel func(v *float64, lim float64, n int) uint64
	// scaleKernel computes x[i] *= alpha.
	scaleKernel func(alpha float64, x *float64, n int)
	// reluKernel computes x[i] = max(0, x[i]).
	reluKernel func(x *float64, n int)
	// dotKernel is a 2x4-lane FMA inner product.
	dotKernel func(a, b *float64, n int) float64
	// axpyKernel is a 4-lane FMA y += alpha*x.
	axpyKernel func(alpha float64, x, y *float64, n int)
)

// GemvT computes out[o] = dot(w[o*in:(o+1)*in], x) (+ bias[o] when bias is
// non-nil) for o in [0, outDim) — one dense-layer forward row against
// weights stored row-major by output unit. Outputs are tiled four wide so
// each element of x is loaded once per tile and the four accumulator
// chains run independently (the single-chain Dot is latency-bound); on
// supported CPUs the tile body is the AVX2+FMA micro-kernel. The two
// paths agree to float rounding (FMA does not round the intermediate
// product), not bitwise.
func GemvT(out, w []float64, outDim, inDim int, x, bias []float64) {
	if len(x) != inDim {
		panic(fmt.Sprintf("linalg: GemvT input %d, want %d", len(x), inDim))
	}
	if len(out) < outDim || len(w) < outDim*inDim {
		panic(fmt.Sprintf("linalg: GemvT out %d / weights %d too small for %dx%d", len(out), len(w), outDim, inDim))
	}
	if bias != nil && len(bias) < outDim {
		panic(fmt.Sprintf("linalg: GemvT bias %d, want %d", len(bias), outDim))
	}
	o := 0
	if gemvTKernel != nil && inDim >= 4 && outDim >= 4 {
		o = outDim &^ 3
		var bp *float64
		if bias != nil {
			bp = &bias[0]
		}
		gemvTKernel(&out[0], &w[0], &x[0], inDim, o, bp)
		for ; o < outDim; o++ {
			out[o] = Dot(w[o*inDim:o*inDim+inDim], x)
			if bias != nil {
				out[o] += bias[o]
			}
		}
		return
	}
	for ; o+4 <= outDim; o += 4 {
		w0 := w[o*inDim : o*inDim+inDim]
		w1 := w[(o+1)*inDim : (o+1)*inDim+inDim]
		w2 := w[(o+2)*inDim : (o+2)*inDim+inDim]
		w3 := w[(o+3)*inDim : (o+3)*inDim+inDim]
		var s0, s1, s2, s3 float64
		for j, xv := range x {
			s0 += xv * w0[j]
			s1 += xv * w1[j]
			s2 += xv * w2[j]
			s3 += xv * w3[j]
		}
		out[o], out[o+1], out[o+2], out[o+3] = s0, s1, s2, s3
	}
	for ; o < outDim; o++ {
		out[o] = Dot(w[o*inDim:o*inDim+inDim], x)
	}
	if bias != nil {
		for o := 0; o < outDim; o++ {
			out[o] += bias[o]
		}
	}
}

// GemvT2 runs GemvT for two input rows against the same weight matrix.
// On supported CPUs the paired micro-kernel streams each weight row once
// per pair (two FMAs per ymm weight load instead of one), which is the
// main win when the weight matrix does not fit in L1; each output is
// computed in the same operation order as the single-row kernel, so the
// results are bitwise identical to two GemvT calls.
func GemvT2(out0, out1, w []float64, outDim, inDim int, x0, x1, bias []float64) {
	if gemvT2Kernel == nil || inDim < 4 || outDim < 4 {
		GemvT(out0, w, outDim, inDim, x0, bias)
		GemvT(out1, w, outDim, inDim, x1, bias)
		return
	}
	if len(x0) != inDim || len(x1) != inDim {
		panic(fmt.Sprintf("linalg: GemvT2 inputs %d/%d, want %d", len(x0), len(x1), inDim))
	}
	if len(out0) < outDim || len(out1) < outDim || len(w) < outDim*inDim {
		panic(fmt.Sprintf("linalg: GemvT2 out %d/%d / weights %d too small for %dx%d",
			len(out0), len(out1), len(w), outDim, inDim))
	}
	if bias != nil && len(bias) < outDim {
		panic(fmt.Sprintf("linalg: GemvT2 bias %d, want %d", len(bias), outDim))
	}
	o := outDim &^ 3
	var bp *float64
	if bias != nil {
		bp = &bias[0]
	}
	gemvT2Kernel(&out0[0], &out1[0], &w[0], &x0[0], &x1[0], inDim, o, bp)
	for ; o < outDim; o++ {
		row := w[o*inDim : o*inDim+inDim]
		out0[o] = Dot(row, x0)
		out1[o] = Dot(row, x1)
		if bias != nil {
			out0[o] += bias[o]
			out1[o] += bias[o]
		}
	}
}

// MulVec computes m*x.
func MulVec(m *Matrix, x []float64) []float64 {
	out := make([]float64, m.Rows)
	return MulVecInto(out, m, x)
}

// MulVecInto computes dst = m*x without allocating (len(dst) == m.Rows).
func MulVecInto(dst []float64, m *Matrix, x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVecInto dst %d, want %d", len(dst), m.Rows))
	}
	parallelRows(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = Dot(m.Row(i), x)
		}
	})
	return dst
}

// Dot returns the inner product of a and b. Independent accumulator
// chains hide the FP-add latency of the naive single-chain loop; the sum
// of the partials is deterministic for a given input on a given build
// (the AVX2 kernel and the scalar path associate differently and the
// fused multiply-adds round once, so the two builds agree to float
// rounding, not bitwise).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	if dotKernel != nil && len(a) >= 8 {
		return dotKernel(&a[0], &b[0], len(a))
	}
	var s0, s1, s2, s3 float64
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for i := n; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place. Per-element accumulation order is
// the same on every path; the AVX2 kernel fuses the multiply-add, so the
// two builds agree to float rounding, not bitwise.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	if axpyKernel != nil && len(x) >= 8 {
		axpyKernel(alpha, &x[0], &y[0], len(x))
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// GLUInto computes the gated linear unit dst[i] = u[i] * σ(v[i]) as
// u/(1+exp(-v)), folding the gate multiply into the sigmoid's division.
// The AVX2 kernel's polynomial exp agrees with math.Exp to ~1e-13
// relative; very negative gates saturate to 0 through a clamp at exp(708)
// rather than an Inf intermediate.
func GLUInto(dst, u, v []float64) {
	if len(dst) != len(u) || len(u) != len(v) {
		panic(fmt.Sprintf("linalg: GLUInto length mismatch %d/%d/%d", len(dst), len(u), len(v)))
	}
	i := 0
	if gluKernel != nil && len(v) >= 8 {
		i = len(v) &^ 7
		gluKernel(&dst[0], &u[0], &v[0], i)
	}
	for ; i < len(v); i++ {
		dst[i] = u[i] / (1 + math.Exp(-v[i]))
	}
}

// ScaleShiftReLU computes x[i] = max(0, x[i]*scale[i]+shift[i]) in place —
// an eval-mode batch-norm folded to one multiply-add per element, fused
// with the following ReLU. NaN propagates on every path.
func ScaleShiftReLU(x, scale, shift []float64) {
	if len(x) != len(scale) || len(x) != len(shift) {
		panic(fmt.Sprintf("linalg: ScaleShiftReLU length mismatch %d/%d/%d", len(x), len(scale), len(shift)))
	}
	if scaleShiftReLUKernel != nil && len(x) >= 4 {
		scaleShiftReLUKernel(&x[0], &scale[0], &shift[0], len(x))
		return
	}
	for i, v := range x {
		v = v*scale[i] + shift[i]
		if v < 0 {
			v = 0
		}
		x[i] = v
	}
}

// ScaleShiftInto computes dst[i] = x[i]*scale[i] + shift[i] — an affine
// per-element transform, e.g. input standardization with scale = 1/std and
// shift = -mean/std. dst may alias x. The vector path fuses the multiply
// and add (FMA), so it agrees with the scalar path to rounding, not
// bitwise.
func ScaleShiftInto(dst, x, scale, shift []float64) {
	if len(dst) != len(x) || len(x) != len(scale) || len(x) != len(shift) {
		panic(fmt.Sprintf("linalg: ScaleShiftInto length mismatch %d/%d/%d/%d", len(dst), len(x), len(scale), len(shift)))
	}
	if scaleShiftIntoKernel != nil && len(x) >= 4 {
		scaleShiftIntoKernel(&dst[0], &x[0], &scale[0], &shift[0], len(x))
		return
	}
	for i, v := range x {
		dst[i] = v*scale[i] + shift[i]
	}
}

// ScaleMax computes v[i] *= scale[i] in place and returns the maximum of
// the scaled values (-Inf for empty input). NaN handling is unspecified;
// hot-path callers validate inputs upstream.
func ScaleMax(v, scale []float64) float64 {
	if len(v) != len(scale) {
		panic(fmt.Sprintf("linalg: ScaleMax length mismatch %d/%d", len(v), len(scale)))
	}
	if scaleMaxKernel != nil && len(v) >= 4 {
		return scaleMaxKernel(&v[0], &scale[0], len(v))
	}
	vmax := math.Inf(-1)
	for i := range v {
		v[i] *= scale[i]
		if v[i] > vmax {
			vmax = v[i]
		}
	}
	return vmax
}

// MaskGreater returns a bitmask with bit i set when v[i] > lim (NaN
// compares false, like the > operator). len(v) must be at most 64.
func MaskGreater(v []float64, lim float64) uint64 {
	if len(v) > 64 {
		panic(fmt.Sprintf("linalg: MaskGreater input %d exceeds 64 lanes", len(v)))
	}
	var m uint64
	i := 0
	if maskGreaterKernel != nil && len(v) >= 4 {
		i = len(v) &^ 3
		m = maskGreaterKernel(&v[0], lim, i)
	}
	for ; i < len(v); i++ {
		if v[i] > lim {
			m |= 1 << uint(i)
		}
	}
	return m
}

// ReLU computes x[i] = max(0, x[i]) in place; NaN propagates.
func ReLU(x []float64) {
	if reluKernel != nil && len(x) >= 4 {
		reluKernel(&x[0], len(x))
		return
	}
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	if scaleKernel != nil && len(x) >= 4 {
		scaleKernel(alpha, &x[0], len(x))
		return
	}
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}
