// Package linalg provides the small dense linear-algebra kernel the AIIO
// models need: vectors, row-major matrices with parallel multiplication,
// Cholesky and LU solvers, and (weighted) ridge least squares. Everything is
// float64 and allocation-conscious; parallel paths use a bounded worker pool
// sized by GOMAXPROCS.
package linalg

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// parallelRows runs fn over row ranges [lo, hi) on up to GOMAXPROCS workers.
func parallelRows(rows int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 || rows < 64 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Mul computes a*b in parallel across row blocks.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			// k-major inner loops keep b accesses sequential.
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MulVec computes m*x.
func MulVec(m *Matrix, x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	parallelRows(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = Dot(m.Row(i), x)
		}
	})
	return out
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}
