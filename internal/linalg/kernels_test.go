package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// The vector micro-kernels (AVX2+FMA on amd64) must agree with the portable
// scalar paths: bitwise where the kernel preserves the scalar operation
// order, and within a small relative tolerance where FMA contraction or the
// polynomial exp approximation changes rounding. On platforms without the
// kernels these tests still pass — they then compare the scalar paths
// against the naive references.

func relClose(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 3, 4, 7, 8, 9, 12, 45, 100} {
		a := make([]float64, n)
		b := make([]float64, n)
		want := 0.0
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
			want += a[i] * b[i]
		}
		if got := Dot(a, b); !relClose(got, want, 1e-12) {
			t.Errorf("n=%d Dot=%v want %v", n, got, want)
		}
	}
}

func TestAxpyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 4, 7, 8, 11, 45, 64} {
		x := make([]float64, n)
		y := make([]float64, n)
		want := make([]float64, n)
		alpha := rng.NormFloat64()
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
			want[i] = y[i] + alpha*x[i]
		}
		Axpy(alpha, x, y)
		for i := range y {
			if !relClose(y[i], want[i], 1e-12) {
				t.Fatalf("n=%d y[%d]=%v want %v", n, i, y[i], want[i])
			}
		}
	}
}

func TestGemvTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][2]int{{45, 8}, {32, 45}, {45, 45}, {7, 5}, {4, 4}, {5, 3}, {12, 24}, {45, 16}, {1, 6}, {3, 2}} {
		in, out := dims[0], dims[1]
		w := make([]float64, in*out)
		x := make([]float64, in)
		b := make([]float64, out)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		for _, bias := range [][]float64{nil, b} {
			got := make([]float64, out)
			GemvT(got, w, out, in, x, bias)
			for o := 0; o < out; o++ {
				want := 0.0
				for j := 0; j < in; j++ {
					want += w[o*in+j] * x[j]
				}
				if bias != nil {
					want += bias[o]
				}
				if !relClose(got[o], want, 1e-12) {
					t.Fatalf("%dx%d bias=%v out[%d]=%v want %v", in, out, bias != nil, o, got[o], want)
				}
			}
		}
	}
}

// TestGemvT2MatchesGemvT pins the pairing contract: the two-row kernel is
// bitwise identical to two single-row calls, so callers may pair rows
// opportunistically without any parity impact.
func TestGemvT2MatchesGemvT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dims := range [][2]int{{45, 8}, {32, 45}, {45, 45}, {7, 5}, {4, 4}, {5, 3}, {12, 24}, {45, 16}, {3, 9}, {6, 1}} {
		in, out := dims[0], dims[1]
		w := make([]float64, in*out)
		x0 := make([]float64, in)
		x1 := make([]float64, in)
		b := make([]float64, out)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		for i := range x0 {
			x0[i], x1[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		for _, bias := range [][]float64{nil, b} {
			want0 := make([]float64, out)
			want1 := make([]float64, out)
			got0 := make([]float64, out)
			got1 := make([]float64, out)
			GemvT(want0, w, out, in, x0, bias)
			GemvT(want1, w, out, in, x1, bias)
			GemvT2(got0, got1, w, out, in, x0, x1, bias)
			for o := 0; o < out; o++ {
				if got0[o] != want0[o] || got1[o] != want1[o] {
					t.Fatalf("%dx%d bias=%v o=%d got (%v,%v) want (%v,%v)",
						in, out, bias != nil, o, got0[o], got1[o], want0[o], want1[o])
				}
			}
		}
	}
}

func TestGLUIntoMatchesExp(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 4, 8, 15, 16, 17, 32, 45} {
		u := make([]float64, n)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 6
			u[i] = rng.NormFloat64()
		}
		// Saturation edges: beyond the clamp the sigmoid must flush to
		// exactly 0 or 1 instead of overflowing.
		if n >= 8 {
			v[0], v[1] = 800, -800
		}
		got := make([]float64, n)
		GLUInto(got, u, v)
		for i := range v {
			want := u[i] / (1 + math.Exp(-v[i]))
			if !relClose(got[i], want, 1e-10) {
				t.Fatalf("n=%d glu(%g)·%g = %g want %g", n, v[i], u[i], got[i], want)
			}
		}
	}
}

func TestScaleShiftReLUMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 3, 4, 5, 12, 45} {
		x := make([]float64, n)
		scale := make([]float64, n)
		shift := make([]float64, n)
		want := make([]float64, n)
		for i := range x {
			x[i], scale[i], shift[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
			w := x[i]*scale[i] + shift[i]
			if w < 0 {
				w = 0
			}
			want[i] = w
		}
		ScaleShiftReLU(x, scale, shift)
		for i := range x {
			if !relClose(x[i], want[i], 1e-12) {
				t.Fatalf("n=%d x[%d]=%v want %v", n, i, x[i], want[i])
			}
		}
	}
}

func TestScaleShiftIntoMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 4, 7, 45} {
		x := make([]float64, n)
		scale := make([]float64, n)
		shift := make([]float64, n)
		dst := make([]float64, n)
		for i := range x {
			x[i], scale[i], shift[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		ScaleShiftInto(dst, x, scale, shift)
		for i := range x {
			want := x[i]*scale[i] + shift[i]
			if !relClose(dst[i], want, 1e-12) {
				t.Fatalf("n=%d dst[%d]=%v want %v", n, i, dst[i], want)
			}
		}
		// Aliased form (in-place standardization).
		cp := append([]float64(nil), x...)
		ScaleShiftInto(cp, cp, scale, shift)
		for i := range cp {
			want := x[i]*scale[i] + shift[i]
			if !relClose(cp[i], want, 1e-12) {
				t.Fatalf("aliased n=%d dst[%d]=%v want %v", n, i, cp[i], want)
			}
		}
	}
}

func TestReLUAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 4, 6, 8, 45} {
		x := make([]float64, n)
		wantR := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			wantR[i] = math.Max(0, x[i])
		}
		cp := append([]float64(nil), x...)
		ReLU(cp)
		for i := range cp {
			if cp[i] != wantR[i] {
				t.Fatalf("ReLU n=%d x[%d]=%v want %v", n, i, cp[i], wantR[i])
			}
		}
		alpha := rng.NormFloat64()
		cp = append(cp[:0], x...)
		Scale(alpha, cp)
		for i := range cp {
			if cp[i] != x[i]*alpha {
				t.Fatalf("Scale n=%d x[%d]=%v want %v", n, i, cp[i], x[i]*alpha)
			}
		}
	}
}

func TestScaleMaxAndMaskGreater(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 3, 4, 5, 8, 13, 45, 64} {
		v := make([]float64, n)
		sc := make([]float64, n)
		ref := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
			sc[i] = rng.Float64() + 0.5
			ref[i] = v[i] * sc[i]
		}
		refMax := math.Inf(-1)
		for _, x := range ref {
			if x > refMax {
				refMax = x
			}
		}
		got := ScaleMax(v, sc)
		if got != refMax {
			t.Fatalf("n=%d ScaleMax=%v want %v", n, got, refMax)
		}
		for i := range v {
			if v[i] != ref[i] {
				t.Fatalf("n=%d v[%d]=%v want %v", n, i, v[i], ref[i])
			}
		}
		lim := refMax - 1
		var want uint64
		for i, x := range v {
			if x > lim {
				want |= 1 << uint(i)
			}
		}
		if m := MaskGreater(v, lim); m != want {
			t.Fatalf("n=%d MaskGreater=%b want %b", n, m, want)
		}
		// NaN compares false, like the scalar > operator.
		if n >= 4 {
			v[2] = math.NaN()
			if m := MaskGreater(v, math.Inf(-1)); m&(1<<2) != 0 {
				t.Fatalf("n=%d NaN lane set in mask %b", n, m)
			}
		}
	}
}
