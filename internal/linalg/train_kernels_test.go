package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// The training kernels must agree with naive scalar references across
// sizes that exercise the 8-wide loop, the 4-block, and the Go-side tail.
// FMA contraction changes intermediate rounding, so comparisons are at
// 1e-12 relative, not bitwise.

var trainKernelSizes = []int{0, 1, 3, 4, 7, 8, 9, 12, 31, 45, 64, 100}

func fillNorm(rng *rand.Rand, xs ...[]float64) {
	for _, x := range xs {
		for i := range x {
			x[i] = rng.NormFloat64()
		}
	}
}

func TestEMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range trainKernelSizes {
		x, y := make([]float64, n), make([]float64, n)
		fillNorm(rng, x, y)
		want := make([]float64, n)
		for i := range x {
			want[i] = x[i] * y[i]
		}
		EMul(x, y)
		for i := range x {
			if !relClose(x[i], want[i], 1e-12) {
				t.Fatalf("n=%d x[%d]=%v want %v", n, i, x[i], want[i])
			}
		}
	}
}

func TestMulAccMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range trainKernelSizes {
		acc, a, b := make([]float64, n), make([]float64, n), make([]float64, n)
		fillNorm(rng, acc, a, b)
		want := make([]float64, n)
		for i := range acc {
			want[i] = acc[i] + a[i]*b[i]
		}
		MulAcc(acc, a, b)
		for i := range acc {
			if !relClose(acc[i], want[i], 1e-12) {
				t.Fatalf("n=%d acc[%d]=%v want %v", n, i, acc[i], want[i])
			}
		}
	}
}

func TestESubMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range trainKernelSizes {
		dst, a, b := make([]float64, n), make([]float64, n), make([]float64, n)
		fillNorm(rng, dst, a, b)
		want := make([]float64, n)
		for i := range a {
			want[i] = a[i] - b[i]
		}
		ESub(dst, a, b)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("n=%d dst[%d]=%v want %v", n, i, dst[i], want[i])
			}
		}
	}
}

func TestReLUMaskMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range trainKernelSizes {
		x, mask := make([]float64, n), make([]float64, n)
		fillNorm(rng, x)
		if n > 2 {
			x[0], x[1], x[2] = 0, math.Inf(-1), math.NaN()
		}
		wantX, wantM := make([]float64, n), make([]float64, n)
		for i := range x {
			if x[i] > 0 {
				wantX[i], wantM[i] = x[i], 1
			} else {
				wantX[i], wantM[i] = 0, 0
			}
		}
		ReLUMask(x, mask)
		for i := range x {
			if x[i] != wantX[i] || mask[i] != wantM[i] {
				t.Fatalf("n=%d i=%d got x=%v mask=%v want x=%v mask=%v",
					n, i, x[i], mask[i], wantX[i], wantM[i])
			}
		}
	}
}

func TestSqDiffAccMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range trainKernelSizes {
		acc, x, mean := make([]float64, n), make([]float64, n), make([]float64, n)
		fillNorm(rng, acc, x, mean)
		want := make([]float64, n)
		for i := range acc {
			d := x[i] - mean[i]
			want[i] = acc[i] + d*d
		}
		SqDiffAcc(acc, x, mean)
		for i := range acc {
			if !relClose(acc[i], want[i], 1e-12) {
				t.Fatalf("n=%d acc[%d]=%v want %v", n, i, acc[i], want[i])
			}
		}
	}
}

func TestBNApplyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range trainKernelSizes {
		x, xhat := make([]float64, n), make([]float64, n)
		mean, invStd := make([]float64, n), make([]float64, n)
		gamma, beta := make([]float64, n), make([]float64, n)
		fillNorm(rng, x, mean, gamma, beta)
		for i := range invStd {
			invStd[i] = 0.1 + rng.Float64()
		}
		wantX, wantXh := make([]float64, n), make([]float64, n)
		for i := range x {
			xh := (x[i] - mean[i]) * invStd[i]
			wantXh[i] = xh
			wantX[i] = gamma[i]*xh + beta[i]
		}
		BNApply(x, xhat, mean, invStd, gamma, beta)
		for i := range x {
			if !relClose(x[i], wantX[i], 1e-12) || !relClose(xhat[i], wantXh[i], 1e-12) {
				t.Fatalf("n=%d i=%d got x=%v xhat=%v want x=%v xhat=%v",
					n, i, x[i], xhat[i], wantX[i], wantXh[i])
			}
		}
	}
}

func TestBNBackApplyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, n := range trainKernelSizes {
		out, g, xhat := make([]float64, n), make([]float64, n), make([]float64, n)
		c1, c2, c3 := make([]float64, n), make([]float64, n), make([]float64, n)
		fillNorm(rng, g, xhat, c1, c2, c3)
		want := make([]float64, n)
		for i := range want {
			want[i] = c1[i] * (g[i] - c2[i] - xhat[i]*c3[i])
		}
		BNBackApply(out, g, xhat, c1, c2, c3)
		for i := range out {
			if !relClose(out[i], want[i], 1e-12) {
				t.Fatalf("n=%d out[%d]=%v want %v", n, i, out[i], want[i])
			}
		}
	}
}

func TestDropoutApplyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	const keep, invKeep = 0.8, 1.25
	for _, n := range trainKernelSizes {
		x, mask, u := make([]float64, n), make([]float64, n), make([]float64, n)
		fillNorm(rng, x)
		for i := range u {
			mask[i] = 1
			u[i] = rng.Float64()
		}
		wantX, wantM := make([]float64, n), make([]float64, n)
		for i := range x {
			if u[i] < keep {
				wantX[i], wantM[i] = x[i]*invKeep, mask[i]*invKeep
			}
		}
		DropoutApply(x, mask, u, keep, invKeep)
		for i := range x {
			if !relClose(x[i], wantX[i], 1e-12) || !relClose(mask[i], wantM[i], 1e-12) {
				t.Fatalf("n=%d i=%d got x=%v mask=%v want x=%v mask=%v",
					n, i, x[i], mask[i], wantX[i], wantM[i])
			}
		}
	}
}

func TestAdamStepMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const b1, b2, lr, eps = 0.9, 0.999, 1e-3, 1e-8
	for _, n := range trainKernelSizes {
		for step := 1; step <= 3; step++ {
			c1 := 1 - math.Pow(b1, float64(step))
			c2 := 1 - math.Pow(b2, float64(step))
			w, m, v, g := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
			fillNorm(rng, w, g)
			for i := range v {
				m[i] = rng.NormFloat64() * 0.1
				v[i] = rng.Float64() * 0.01
			}
			wantW, wantM, wantV := make([]float64, n), make([]float64, n), make([]float64, n)
			for i := range w {
				mi := b1*m[i] + (1-b1)*g[i]
				vi := b2*v[i] + (1-b2)*g[i]*g[i]
				wantM[i], wantV[i] = mi, vi
				wantW[i] = w[i] - lr*(mi/c1)/(math.Sqrt(vi/c2)+eps)
			}
			AdamStep(w, m, v, g, b1, b2, c1, c2, lr, eps)
			for i := range w {
				if !relClose(w[i], wantW[i], 1e-12) || !relClose(m[i], wantM[i], 1e-12) || !relClose(v[i], wantV[i], 1e-12) {
					t.Fatalf("n=%d step=%d i=%d got w=%v m=%v v=%v want w=%v m=%v v=%v",
						n, step, i, w[i], m[i], v[i], wantW[i], wantM[i], wantV[i])
				}
			}
		}
	}
}
