package report

import (
	"strings"
	"testing"
)

func TestHBars(t *testing.T) {
	var sb strings.Builder
	HBars(&sb, "factors", []Bar{
		{"POSIX_SEEKS", -0.5},
		{"POSIX_SEQ_WRITES", 0.25},
		{"zero", 0},
	}, 10)
	out := sb.String()
	if !strings.Contains(out, "factors") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	// Negative bar: hashes before the axis; positive: after.
	neg := lines[1]
	pos := lines[2]
	if !strings.Contains(neg, "#|") && !strings.Contains(neg, "# ") {
		t.Errorf("negative bar malformed: %q", neg)
	}
	if strings.Index(neg, "#") > strings.Index(neg, "|") {
		t.Errorf("negative bar on wrong side: %q", neg)
	}
	if strings.Index(pos, "#") < strings.Index(pos, "|") {
		t.Errorf("positive bar on wrong side: %q", pos)
	}
	if !strings.Contains(out, "-0.5000") || !strings.Contains(out, "+0.2500") {
		t.Errorf("values missing: %q", out)
	}
}

func TestHistogram(t *testing.T) {
	var sb strings.Builder
	Histogram(&sb, "perf", []float64{1, 1, 1, 5, 9}, 4, 20)
	out := sb.String()
	if !strings.Contains(out, "perf") || !strings.Contains(out, "#") {
		t.Errorf("histogram malformed: %q", out)
	}
	sb.Reset()
	Histogram(&sb, "empty", nil, 4, 20)
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty histogram should say so")
	}
	sb.Reset()
	Histogram(&sb, "const", []float64{3, 3, 3}, 4, 20)
	if !strings.Contains(sb.String(), "3") {
		t.Error("constant histogram broken")
	}
}

func TestScatter(t *testing.T) {
	var sb strings.Builder
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{0, 1, 4, 9, 16, 25}
	Scatter(&sb, "xy", xs, ys, 8, 20)
	out := sb.String()
	if !strings.Contains(out, "n=6") {
		t.Errorf("scatter missing count: %q", out)
	}
	if strings.Count(out, "|") < 16 {
		t.Error("scatter grid missing")
	}
	sb.Reset()
	Scatter(&sb, "bad", []float64{1}, []float64{}, 4, 10)
	if !strings.Contains(sb.String(), "no data") {
		t.Error("mismatched scatter should report no data")
	}
}

func TestLineChart(t *testing.T) {
	var sb strings.Builder
	LineChart(&sb, "loss", []float64{1.0, 0.8, 0.5, 0.45, 0.44}, 6, 30)
	out := sb.String()
	if !strings.Contains(out, "loss") || !strings.Contains(out, "*") {
		t.Errorf("line chart malformed: %q", out)
	}
	if !strings.Contains(out, "n=5") {
		t.Error("missing point count")
	}
	sb.Reset()
	LineChart(&sb, "empty", nil, 4, 10)
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty chart should say so")
	}
}

func TestTable(t *testing.T) {
	var sb strings.Builder
	Table(&sb, []string{"Model", "RMSE"}, [][]string{
		{"xgboost", "0.56"},
		{"lightgbm", "0.26"},
	})
	out := sb.String()
	if !strings.Contains(out, "Model") || !strings.Contains(out, "lightgbm") {
		t.Errorf("table malformed: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
	if !strings.Contains(lines[1], "---") {
		t.Error("missing separator row")
	}
}

func TestKV(t *testing.T) {
	var sb strings.Builder
	KV(&sb, "performance", "%.2f MiB/s", 412.7)
	if !strings.Contains(sb.String(), "performance:") || !strings.Contains(sb.String(), "412.70 MiB/s") {
		t.Errorf("KV = %q", sb.String())
	}
}

func TestSummary(t *testing.T) {
	var sb strings.Builder
	names := []string{"A", "B", "C"}
	samples := [][]float64{
		{0.5, -0.1, 0},
		{0.4, -0.2, 0},
		{0.6, 0.1, 0},
	}
	Summary(&sb, "beeswarm", names, samples, 2, 40)
	out := sb.String()
	if !strings.Contains(out, "beeswarm") {
		t.Error("missing title")
	}
	// A has the largest mean |value| and must be first; C (all zero) is
	// cut by topN=2.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "A") {
		t.Errorf("first row %q is not feature A", lines[1])
	}
	if strings.Contains(out, "C ") && strings.Index(out, "C ") < len(out)-80 {
		t.Log("C may appear in axis only")
	}
	if !strings.Contains(out, "mean|v|") {
		t.Error("missing mean annotation")
	}
	sb.Reset()
	Summary(&sb, "empty", nil, nil, 5, 40)
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty summary should say so")
	}
}
