// Package report renders the paper's figures as deterministic text
// artifacts: signed horizontal bar charts for SHAP waterfalls (Figs. 6–15),
// histograms (Fig. 4), scatter density grids (Fig. 5), line charts for loss
// curves (Fig. 16), and aligned tables (Tables 1–3). Everything writes to an
// io.Writer so experiments can tee their output into EXPERIMENTS.md runs
// and tests can assert on the rendering.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Bar is one labeled signed value.
type Bar struct {
	Label string
	Value float64
}

// HBars renders signed horizontal bars around a central axis — the text
// analogue of a SHAP waterfall plot. Negative bars (bottlenecks) extend
// left, positive right. width is the number of character cells per side.
func HBars(w io.Writer, title string, bars []Bar, width int) {
	if width <= 0 {
		width = 30
	}
	fmt.Fprintf(w, "%s\n", title)
	max := 0.0
	labelW := 0
	for _, b := range bars {
		if v := math.Abs(b.Value); v > max {
			max = v
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	if max == 0 {
		max = 1
	}
	for _, b := range bars {
		n := int(math.Round(math.Abs(b.Value) / max * float64(width)))
		if n == 0 && b.Value != 0 {
			n = 1
		}
		var left, right string
		if b.Value < 0 {
			left = strings.Repeat(" ", width-n) + strings.Repeat("#", n)
			right = strings.Repeat(" ", width)
		} else {
			left = strings.Repeat(" ", width)
			right = strings.Repeat("#", n) + strings.Repeat(" ", width-n)
		}
		fmt.Fprintf(w, "  %-*s %s|%s %+.4f\n", labelW, b.Label, left, right, b.Value)
	}
}

// Histogram renders a fixed-bin histogram of values.
func Histogram(w io.Writer, title string, values []float64, bins, width int) {
	if bins <= 0 {
		bins = 10
	}
	if width <= 0 {
		width = 40
	}
	fmt.Fprintf(w, "%s\n", title)
	if len(values) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max == min {
		max = min + 1
	}
	counts := make([]int, bins)
	for _, v := range values {
		b := int(float64(bins) * (v - min) / (max - min))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	for b, c := range counts {
		lo := min + (max-min)*float64(b)/float64(bins)
		hi := min + (max-min)*float64(b+1)/float64(bins)
		n := 0
		if peak > 0 {
			n = c * width / peak
		}
		fmt.Fprintf(w, "  [%10.3g, %10.3g) %-*s %d\n", lo, hi, width, strings.Repeat("#", n), c)
	}
}

// Scatter renders a density grid of (x, y) points: darker cells hold more
// points. rows × cols is the grid size.
func Scatter(w io.Writer, title string, xs, ys []float64, rows, cols int) {
	if rows <= 0 {
		rows = 16
	}
	if cols <= 0 {
		cols = 60
	}
	fmt.Fprintf(w, "%s\n", title)
	if len(xs) == 0 || len(xs) != len(ys) {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := range xs {
		minX = math.Min(minX, xs[i])
		maxX = math.Max(maxX, xs[i])
		minY = math.Min(minY, ys[i])
		maxY = math.Max(maxY, ys[i])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]int, rows)
	for r := range grid {
		grid[r] = make([]int, cols)
	}
	for i := range xs {
		c := int(float64(cols) * (xs[i] - minX) / (maxX - minX))
		r := int(float64(rows) * (ys[i] - minY) / (maxY - minY))
		if c >= cols {
			c = cols - 1
		}
		if r >= rows {
			r = rows - 1
		}
		grid[rows-1-r][c]++ // y grows upward
	}
	shades := []byte(" .:*#@")
	for r := 0; r < rows; r++ {
		line := make([]byte, cols)
		for c := 0; c < cols; c++ {
			v := grid[r][c]
			idx := 0
			switch {
			case v == 0:
				idx = 0
			case v <= 1:
				idx = 1
			case v <= 3:
				idx = 2
			case v <= 8:
				idx = 3
			case v <= 20:
				idx = 4
			default:
				idx = 5
			}
			line[c] = shades[idx]
		}
		fmt.Fprintf(w, "  |%s|\n", line)
	}
	fmt.Fprintf(w, "   x: [%.3g, %.3g]  y: [%.3g, %.3g]  n=%d\n", minX, maxX, minY, maxY, len(xs))
}

// LineChart renders a single series as an ASCII line plot (used for the
// Fig. 16 loss curve).
func LineChart(w io.Writer, title string, series []float64, rows, cols int) {
	if rows <= 0 {
		rows = 12
	}
	if cols <= 0 {
		cols = 60
	}
	fmt.Fprintf(w, "%s\n", title)
	if len(series) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	min, max := series[0], series[0]
	for _, v := range series {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if max == min {
		max = min + 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for c := 0; c < cols; c++ {
		i := c * (len(series) - 1) / maxInt(cols-1, 1)
		v := series[i]
		r := int(float64(rows-1) * (max - v) / (max - min))
		grid[r][c] = '*'
	}
	fmt.Fprintf(w, "  %8.4f +%s\n", max, strings.Repeat("-", cols))
	for r := 0; r < rows; r++ {
		fmt.Fprintf(w, "           |%s\n", grid[r])
	}
	fmt.Fprintf(w, "  %8.4f +%s (n=%d)\n", min, strings.Repeat("-", cols), len(series))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Table renders an aligned text table.
func Table(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(headers))
		for i := range headers {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range rows {
		printRow(row)
	}
}

// KV prints a "key: value" block line.
func KV(w io.Writer, key string, format string, args ...interface{}) {
	fmt.Fprintf(w, "  %-28s "+format+"\n", append([]interface{}{key + ":"}, args...)...)
}

// Warn prints a prominent warning line — degraded diagnoses, quarantined
// records, anything the user should notice without the run failing.
func Warn(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, "  !! warning: "+format+"\n", args...)
}

// Advisory is one provenance claim attached to a diagnosis: something the
// serving stack asserts about itself (which model generation answered,
// whether a canary gate vetted it, what the drift monitor currently sees)
// together with where the claim comes from and how much to trust it.
type Advisory struct {
	// Claim is the assertion itself, e.g. "serving generation 4".
	Claim string
	// Source is the subsystem making the claim, e.g. "canary-gate".
	Source string
	// Confidence qualifies the claim: "exact" for fingerprinted facts,
	// "measured on 32 held-out jobs" for empirical ones.
	Confidence string
}

// Advisories renders provenance claims under a diagnosis, one aligned line
// per claim. Nothing is printed for an empty list: absence of provenance
// should not manufacture output.
func Advisories(w io.Writer, advs []Advisory) {
	if len(advs) == 0 {
		return
	}
	srcW := 0
	for _, a := range advs {
		if len(a.Source) > srcW {
			srcW = len(a.Source)
		}
	}
	fmt.Fprintln(w, "provenance:")
	for _, a := range advs {
		line := a.Claim
		if a.Confidence != "" {
			line += " [" + a.Confidence + "]"
		}
		fmt.Fprintf(w, "  %-*s  %s\n", srcW+1, a.Source+":", line)
	}
}

// Summary renders a SHAP summary ("beeswarm") plot as text: one row per
// feature, each sample's value marked by position along a shared signed
// axis — the form of the paper's Fig. 1b. Rows are ordered by mean |value|
// and capped at topN.
func Summary(w io.Writer, title string, names []string, samples [][]float64, topN, width int) {
	if width <= 0 {
		width = 60
	}
	fmt.Fprintf(w, "%s\n", title)
	if len(samples) == 0 || len(names) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	nf := len(names)
	meanAbs := make([]float64, nf)
	max := 0.0
	for _, s := range samples {
		for j := 0; j < nf && j < len(s); j++ {
			meanAbs[j] += math.Abs(s[j]) / float64(len(samples))
			if a := math.Abs(s[j]); a > max {
				max = a
			}
		}
	}
	if max == 0 {
		max = 1
	}
	order := make([]int, nf)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return meanAbs[order[a]] > meanAbs[order[b]] })
	if topN > 0 && topN < nf {
		order = order[:topN]
	}
	labelW := 0
	for _, j := range order {
		if len(names[j]) > labelW {
			labelW = len(names[j])
		}
	}
	mid := width / 2
	for _, j := range order {
		line := []byte(strings.Repeat(" ", width+1))
		line[mid] = '|'
		for _, s := range samples {
			if j >= len(s) {
				continue
			}
			pos := mid + int(math.Round(s[j]/max*float64(mid)))
			if pos < 0 {
				pos = 0
			}
			if pos > width {
				pos = width
			}
			switch line[pos] {
			case ' ', '|':
				line[pos] = '.'
			case '.':
				line[pos] = ':'
			case ':':
				line[pos] = '*'
			default:
				line[pos] = '#'
			}
		}
		fmt.Fprintf(w, "  %-*s %s mean|v|=%.4f\n", labelW, names[j], line, meanAbs[j])
	}
	fmt.Fprintf(w, "  %-*s %s\n", labelW, "", fmt.Sprintf("%-*s0%*s",
		mid, fmt.Sprintf("%-.3g", -max), mid, fmt.Sprintf("%+.3g", max)))
}
