package mlp

import (
	"math"
	"testing"

	"github.com/hpc-repro/aiio/internal/linalg"
)

// referencePredict replays the pre-flattening inference path — per-layer
// denseForward, eval-mode batch norm via bnForwardEval, scalar ReLU —
// against which the fused forwardStandardized hot path must agree.
func referencePredict(m *Model, x *linalg.Matrix) []float64 {
	xs := linalg.NewMatrix(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row, orow := x.Row(i), xs.Row(i)
		for j, v := range row {
			s := m.Std[j]
			if !(s > 0) || math.IsInf(s, 1) {
				s = 1
			}
			orow[j] = (v - m.Mean[j]) / s
		}
	}
	h := xs
	nHidden := len(m.Config.Hidden)
	for l := 0; l < nHidden; l++ {
		h = denseForward(&m.Dense[l], h)
		if l > 0 {
			h = bnForwardEval(&m.BN[l-1], h)
		}
		for i := range h.Data {
			if h.Data[i] < 0 {
				h.Data[i] = 0
			}
		}
	}
	out := denseForward(&m.Dense[nHidden], h)
	pred := make([]float64, x.Rows)
	for i := range pred {
		pred[i] = out.At(i, 0)*m.YStd + m.YMean
	}
	return pred
}

func maxRelDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		d := math.Abs(a[i]-b[i]) / math.Max(1, math.Max(math.Abs(a[i]), math.Abs(b[i])))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TestInferenceParityWithReference pins the flattening refactor: the
// buffered/vectorized batch path, the pooled single-row Predict, and the
// layer-by-layer reference implementation must agree within 1e-9 relative.
func TestInferenceParityWithReference(t *testing.T) {
	x, y := synth(400, 9, 21)
	cfg := smallConfig()
	cfg.Epochs = 8
	m, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	want := referencePredict(m, x)
	got := m.PredictBatch(x)
	if d := maxRelDiff(got, want); d > 1e-9 {
		t.Errorf("PredictBatch deviates from reference path by %g (> 1e-9)", d)
	}
	// Odd row counts exercise the unpaired-row tail of the 2-row kernel.
	sub := &linalg.Matrix{Rows: 7, Cols: x.Cols, Data: x.Data[:7*x.Cols]}
	got7 := m.PredictBatch(sub)
	if d := maxRelDiff(got7, want[:7]); d > 1e-9 {
		t.Errorf("odd-size PredictBatch deviates by %g", d)
	}
	for i := 0; i < 16; i++ {
		p := m.Predict(x.Row(i))
		if d := maxRelDiff([]float64{p}, []float64{want[i]}); d > 1e-9 {
			t.Errorf("Predict row %d deviates by %g", i, d)
		}
	}
}

// TestConstantColumnsRecorded pins the zero-variance guard: constant
// training columns must be recorded, their Std clamped to 1, and inference
// on perturbed values of those columns must stay finite.
func TestConstantColumnsRecorded(t *testing.T) {
	x, y := synth(200, 5, 7)
	for i := 0; i < x.Rows; i++ {
		x.Set(i, 1, 4.25) // constant non-zero
		x.Set(i, 3, 0)    // constant zero (sparsity)
	}
	cfg := smallConfig()
	cfg.Epochs = 4
	m, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ConstantCols) != 2 || m.ConstantCols[0] != 1 || m.ConstantCols[1] != 3 {
		t.Fatalf("ConstantCols = %v, want [1 3]", m.ConstantCols)
	}
	for _, j := range m.ConstantCols {
		if m.Std[j] != 1 {
			t.Errorf("Std[%d] = %v, want clamp to 1", j, m.Std[j])
		}
	}
	probe := append([]float64(nil), x.Row(0)...)
	probe[1] = 1e9
	probe[3] = -1e9
	if p := m.Predict(probe); math.IsNaN(p) || math.IsInf(p, 0) {
		t.Errorf("perturbed constant columns produced non-finite prediction %v", p)
	}
}
