package mlp

import (
	"math"
	"math/rand"

	"github.com/hpc-repro/aiio/internal/linalg"
)

// The blocked training path. One trainScratch carries every mini-batch of
// every epoch: activations, BN caches, fused backward masks, and two
// ping-pong gradient blocks, all sized to the configured batch once and
// reshaped per batch — steady-state training allocates nothing per
// mini-batch. Dense forward rows run pairwise on the GemvT2 kernel (one
// weight stream per pair); backward is three GEMM-shaped calls per layer
// (ColSumsAcc for db, GemmTA for dW += Gᵀ·X, Gemm for dX = G·W), all built
// on the Axpy2 paired rank-1 kernel.
//
// Equivalence with the scalar reference path (Config.ReferenceKernels): the
// same gradients up to FP reassociation — the kernels pair rows and fuse
// multiply-adds, so per-element sums associate differently. RNG consumption
// is identical by construction: the dropout loop below draws one rng.Float64
// per activation element in the same order as the reference loop, keeping
// the epoch shuffles of the two paths aligned so parity tests see FP drift
// only. mlp_parity_test.go pins the divergence after several epochs.

// trainScratch is the reusable per-Train state of the fast path.
type trainScratch struct {
	xb   linalg.Matrix   // standardized batch input
	yb   []float64       // batch targets
	act  []linalg.Matrix // post-block activation per hidden layer
	mask []linalg.Matrix // fused ReLU x dropout backward masks
	xhat []linalg.Matrix // BN normalized caches
	out  linalg.Matrix   // final linear output (batch x 1)
	gA   linalg.Matrix   // ping-pong gradient blocks
	gB   linalg.Matrix
	bnMean   [][]float64
	bnInvStd [][]float64
	sumG     []float64 // BN backward column reductions
	sumGX    []float64
	bnCoef   []float64 // BN backward per-column gamma*invStd
	dropU    []float64 // pre-drawn dropout uniforms, one per activation
}

func newTrainScratch(m *Model, batch, inCols int) *trainScratch {
	nHidden := len(m.Config.Hidden)
	ts := &trainScratch{
		yb:       make([]float64, batch),
		act:      make([]linalg.Matrix, nHidden),
		mask:     make([]linalg.Matrix, nHidden),
		xhat:     make([]linalg.Matrix, len(m.BN)),
		bnMean:   make([][]float64, len(m.BN)),
		bnInvStd: make([][]float64, len(m.BN)),
	}
	reshape(&ts.xb, batch, inCols)
	maxDim := 1
	for l, dim := range m.Config.Hidden {
		if dim > maxDim {
			maxDim = dim
		}
		reshape(&ts.act[l], batch, dim)
		reshape(&ts.mask[l], batch, dim)
	}
	for i := range m.BN {
		dim := m.BN[i].Dim
		reshape(&ts.xhat[i], batch, dim)
		ts.bnMean[i] = make([]float64, dim)
		ts.bnInvStd[i] = make([]float64, dim)
	}
	ts.sumG = make([]float64, maxDim)
	ts.sumGX = make([]float64, maxDim)
	ts.bnCoef = make([]float64, maxDim)
	ts.dropU = make([]float64, batch*maxDim)
	reshape(&ts.out, batch, 1)
	reshape(&ts.gA, batch, maxDim)
	reshape(&ts.gB, batch, maxDim)
	return ts
}

// denseForwardInto computes dst = x·Wᵀ + b into the preallocated dst,
// walking rows in pairs so each pass over the layer weights feeds two rows.
func denseForwardInto(d *DenseState, x, dst *linalg.Matrix) {
	i := 0
	for ; i+1 < x.Rows; i += 2 {
		linalg.GemvT2(dst.Row(i), dst.Row(i+1), d.W, d.Out, d.In, x.Row(i), x.Row(i+1), d.B)
	}
	for ; i < x.Rows; i++ {
		linalg.GemvT(dst.Row(i), d.W, d.Out, d.In, x.Row(i), d.B)
	}
}

// denseBackwardInto accumulates dW += Gᵀ·X and db += Σ G, and writes
// dX = G·W into gin when gin is non-nil (the first layer's input gradient
// is never consumed, so callers pass nil and skip the largest product).
func denseBackwardInto(d *DenseState, x, g *linalg.Matrix, gw, gb []float64, gin *linalg.Matrix) {
	rows := g.Rows
	linalg.ColSumsAcc(gb, g.Data, rows, d.Out)
	linalg.GemmTA(gw, g.Data, x.Data, rows, d.Out, d.In)
	if gin != nil {
		linalg.Gemm(gin.Data, g.Data, d.W, rows, d.Out, d.In)
	}
}

// bnForwardTrainInto is bnForwardTrain on scratch: x is normalized in place
// (the pre-BN values are not needed by backward), xhat/mean/invStd are
// written into the reusable slabs, and running stats update as usual.
func bnForwardTrainInto(bn *BNState, x, xhat *linalg.Matrix, mean, invStd []float64) {
	n := float64(x.Rows)
	for j := range mean {
		mean[j] = 0
	}
	for i := 0; i < x.Rows; i++ {
		linalg.Axpy(1, x.Row(i), mean)
	}
	for j := range mean {
		mean[j] /= n
	}
	// invStd doubles as the variance accumulator until the sqrt below.
	for j := range invStd {
		invStd[j] = 0
	}
	for i := 0; i < x.Rows; i++ {
		linalg.SqDiffAcc(invStd, x.Row(i), mean)
	}
	const momentum = 0.9
	for j := range invStd {
		variance := invStd[j] / n
		invStd[j] = 1 / math.Sqrt(variance+1e-5)
		bn.Mean[j] = momentum*bn.Mean[j] + (1-momentum)*mean[j]
		bn.Var[j] = momentum*bn.Var[j] + (1-momentum)*variance
	}
	for i := 0; i < x.Rows; i++ {
		linalg.BNApply(x.Row(i), xhat.Row(i), mean, invStd, bn.Gamma, bn.Beta)
	}
}

// bnBackwardInto is bnBackward on scratch, writing dL/dx into gin. The
// column reductions Σg and Σg·x̂ are computed once and serve double duty:
// added into gBeta/gGamma (the parameter gradients are exactly those sums)
// and rescaled by 1/n in place as the c2/c3 coefficients of the input
// gradient, with c1 = γ·invStd staged in coef.
func bnBackwardInto(bn *BNState, xhat, g *linalg.Matrix, invStd []float64,
	gGamma, gBeta []float64, gin *linalg.Matrix, sumG, sumGX, coef []float64) {

	n := float64(g.Rows)
	sumG = sumG[:bn.Dim]
	sumGX = sumGX[:bn.Dim]
	coef = coef[:bn.Dim]
	for j := range sumG {
		sumG[j] = 0
		sumGX[j] = 0
	}
	for i := 0; i < g.Rows; i++ {
		grow := g.Row(i)
		linalg.Axpy(1, grow, sumG)
		linalg.MulAcc(sumGX, grow, xhat.Row(i))
	}
	linalg.Axpy(1, sumGX, gGamma)
	linalg.Axpy(1, sumG, gBeta)
	for j := range coef {
		coef[j] = bn.Gamma[j] * invStd[j]
		sumG[j] /= n
		sumGX[j] /= n
	}
	for i := 0; i < g.Rows; i++ {
		linalg.BNBackApply(gin.Row(i), g.Row(i), xhat.Row(i), coef, sumG, sumGX)
	}
}

// trainStepFast is the blocked forward/backward pass: the same math as
// trainStep over the batch rows batch (indices into xs/ys), with gradients
// accumulated into grads.
func (m *Model) trainStepFast(ts *trainScratch, batch []int, xs *linalg.Matrix, ys []float64,
	grads [][]float64, denseW, denseB, bnG, bnB []int, rng *rand.Rand) {

	rows := len(batch)
	nHidden := len(m.Config.Hidden)
	xb := reshape(&ts.xb, rows, xs.Cols)
	yb := ts.yb[:rows]
	for bi, i := range batch {
		copy(xb.Row(bi), xs.Row(i))
		yb[bi] = ys[i]
	}

	// input returns what dense layer l consumed on the way up.
	input := func(l int) *linalg.Matrix {
		if l == 0 {
			return xb
		}
		return &ts.act[l-1]
	}

	h := xb
	for l := 0; l < nHidden; l++ {
		d := &m.Dense[l]
		dst := reshape(&ts.act[l], rows, d.Out)
		denseForwardInto(d, h, dst)
		if l > 0 {
			bn := &m.BN[l-1]
			bnForwardTrainInto(bn, dst, reshape(&ts.xhat[l-1], rows, bn.Dim),
				ts.bnMean[l-1], ts.bnInvStd[l-1])
		}
		// ReLU, recording the keep mask; dropout then folds its inverted
		// scale into the same mask so backward applies both in one pass.
		mk := reshape(&ts.mask[l], rows, d.Out)
		linalg.ReLUMask(dst.Data, mk.Data)
		if l > 0 && m.Config.Dropout > 0 {
			keep := 1 - m.Config.Dropout
			invKeep := 1 / keep
			// One rng draw per element in data order — the exact stream the
			// reference path consumes, keeping the two paths' shuffles
			// aligned — buffered so the keep/zero decisions apply vectorized.
			u := ts.dropU[:len(dst.Data)]
			for i := range u {
				u[i] = rng.Float64()
			}
			linalg.DropoutApply(dst.Data, mk.Data, u, keep, invKeep)
		}
		h = dst
	}
	out := reshape(&ts.out, rows, 1)
	denseForwardInto(&m.Dense[nHidden], h, out)

	// MSE gradient on the single output, then walk the layers back down
	// ping-ponging between the two gradient blocks.
	bufs := [2]*linalg.Matrix{&ts.gA, &ts.gB}
	cur := reshape(bufs[0], rows, 1)
	curIdx := 0
	inv := 1 / float64(rows)
	for i := 0; i < rows; i++ {
		cur.Data[i] = (out.Data[i] - yb[i]) * inv
	}
	next := reshape(bufs[1], rows, m.Dense[nHidden].In)
	denseBackwardInto(&m.Dense[nHidden], input(nHidden), cur,
		grads[denseW[nHidden]], grads[denseB[nHidden]], next)
	cur, curIdx = next, 1

	for l := nHidden - 1; l >= 0; l-- {
		linalg.EMul(cur.Data, ts.mask[l].Data)
		if l > 0 {
			bn := &m.BN[l-1]
			nxt := reshape(bufs[1-curIdx], rows, bn.Dim)
			bnBackwardInto(bn, &ts.xhat[l-1], cur, ts.bnInvStd[l-1],
				grads[bnG[l-1]], grads[bnB[l-1]], nxt, ts.sumG, ts.sumGX, ts.bnCoef)
			cur, curIdx = nxt, 1-curIdx
		}
		d := &m.Dense[l]
		var gin *linalg.Matrix
		if l > 0 {
			gin = reshape(bufs[1-curIdx], rows, d.In)
		}
		denseBackwardInto(d, input(l), cur, grads[denseW[l]], grads[denseB[l]], gin)
		if l > 0 {
			cur, curIdx = gin, 1-curIdx
		}
	}
}
