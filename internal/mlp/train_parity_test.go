package mlp

import (
	"math"
	"testing"
)

// The blocked training path (trainStepFast) must track the scalar reference
// path (Config.ReferenceKernels) to FP-reassociation accuracy. Both paths
// consume the rng identically (one dropout draw per element), so with the
// same seed they see the same shuffles and the same dropout masks; the only
// divergence is rounding from paired rows and fused multiply-adds, which
// compounds through Adam over epochs. The documented training-parity
// tolerance is 1e-6 relative on predictions after a 5-epoch fit — the same
// contract BENCH_training.json records for the end-to-end diagnose parity.
const trainParityTol = 1e-6

func trainBothPaths(t *testing.T, cfg Config, epochs int) (fast, ref *Model) {
	t.Helper()
	x, y := synth(600, 5, 31)
	ex, ey := synth(150, 5, 32)
	cfg.Epochs = epochs
	cfg.EarlyStoppingRounds = 0

	cfg.ReferenceKernels = false
	fast, err := Train(cfg, x, y, ex, ey)
	if err != nil {
		t.Fatalf("fast train: %v", err)
	}
	cfg.ReferenceKernels = true
	ref, err = Train(cfg, x, y, ex, ey)
	if err != nil {
		t.Fatalf("reference train: %v", err)
	}
	return fast, ref
}

func TestTrainFastMatchesReference(t *testing.T) {
	cfg := smallConfig()
	fast, ref := trainBothPaths(t, cfg, 5)

	px, _ := synth(200, 5, 33)
	pf := fast.PredictBatch(px)
	pr := ref.PredictBatch(px)
	for i := range pf {
		rel := math.Abs(pf[i]-pr[i]) / math.Max(1, math.Abs(pr[i]))
		if rel > trainParityTol {
			t.Fatalf("prediction %d diverged: fast=%v ref=%v rel=%.3g (tol %g)",
				i, pf[i], pr[i], rel, trainParityTol)
		}
	}
	// The learned tensors themselves must agree too, not just their
	// composition into predictions.
	for li := range fast.Dense {
		for wi := range fast.Dense[li].W {
			a, b := fast.Dense[li].W[wi], ref.Dense[li].W[wi]
			if math.Abs(a-b) > trainParityTol*math.Max(1, math.Abs(b)) {
				t.Fatalf("dense[%d].W[%d] diverged: fast=%v ref=%v", li, wi, a, b)
			}
		}
	}
}

func TestTrainFastMatchesReferenceWithoutDropout(t *testing.T) {
	// Dropout off exercises the pure GEMM forward/backward equivalence with
	// no mask interplay.
	cfg := smallConfig()
	cfg.Dropout = 0
	fast, ref := trainBothPaths(t, cfg, 5)
	px, _ := synth(100, 5, 34)
	pf := fast.PredictBatch(px)
	pr := ref.PredictBatch(px)
	for i := range pf {
		if math.Abs(pf[i]-pr[i]) > trainParityTol*math.Max(1, math.Abs(pr[i])) {
			t.Fatalf("prediction %d diverged: fast=%v ref=%v", i, pf[i], pr[i])
		}
	}
}

func TestTrainFastConvergesLikeReference(t *testing.T) {
	// Over a realistic budget the FP drift makes bitwise comparison
	// meaningless, but both paths must land at the same quality.
	cfg := smallConfig()
	x, y := synth(1200, 5, 35)
	ex, ey := synth(300, 5, 36)
	fast, err := Train(cfg, x, y, ex, ey)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ReferenceKernels = true
	ref, err := Train(cfg, x, y, ex, ey)
	if err != nil {
		t.Fatal(err)
	}
	ef := rmseOf(fast.PredictBatch(ex), ey)
	er := rmseOf(ref.PredictBatch(ex), ey)
	if ef > er*1.25+0.05 {
		t.Fatalf("fast path converged worse: fast RMSE %v vs reference %v", ef, er)
	}
}
