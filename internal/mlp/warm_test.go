package mlp

import (
	"testing"

	"github.com/hpc-repro/aiio/internal/linalg"
)

func TestWarmStartConvergesFasterThanCold(t *testing.T) {
	cfg := smallConfig()
	x, y := synth(1200, 5, 41)
	ex, ey := synth(300, 5, 42)
	prev, err := Train(cfg, x, y, ex, ey)
	if err != nil {
		t.Fatal(err)
	}
	coldRMSE := rmseOf(prev.PredictBatch(ex), ey)

	// Fresh draw from the same distribution: a warm start on a fraction of
	// the epoch budget must match the full cold fit (+ epsilon).
	x2, y2 := synth(1200, 5, 43)
	warmCfg := cfg
	warmCfg.Epochs = cfg.Epochs / 4
	warm, err := TrainWarm(warmCfg, x2, y2, ex, ey, prev)
	if err != nil {
		t.Fatal(err)
	}
	warmRMSE := rmseOf(warm.PredictBatch(ex), ey)
	if warmRMSE > coldRMSE*1.15+0.05 {
		t.Fatalf("warm start on 1/4 budget did not hold the line: warm RMSE %v vs cold %v", warmRMSE, coldRMSE)
	}
}

func TestWarmStartNeverWorseThanSeed(t *testing.T) {
	cfg := smallConfig()
	x, y := synth(800, 5, 44)
	ex, ey := synth(200, 5, 45)
	prev, err := Train(cfg, x, y, ex, ey)
	if err != nil {
		t.Fatal(err)
	}
	seedRMSE := rmseOf(prev.PredictBatch(ex), ey)

	// Even a hostile warm run (huge LR, tiny budget) must restore the seed
	// weights via the pre-epoch early-stopping baseline.
	warmCfg := cfg
	warmCfg.Epochs = 2
	warmCfg.LearningRate = 0.5
	warmCfg.EarlyStoppingRounds = 1
	x2, y2 := synth(800, 5, 46)
	warm, err := TrainWarm(warmCfg, x2, y2, ex, ey, prev)
	if err != nil {
		t.Fatal(err)
	}
	warmRMSE := rmseOf(warm.PredictBatch(ex), ey)
	if warmRMSE > seedRMSE*1.01+1e-9 {
		t.Fatalf("diverging warm run shipped worse weights than its seed: %v vs %v (BestEpoch=%d)",
			warmRMSE, seedRMSE, warm.BestEpoch)
	}
}

func TestCanWarmStartRejections(t *testing.T) {
	cfg := smallConfig()
	x, y := synth(400, 5, 47)
	prev, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	if ok, _ := CanWarmStart(nil, cfg, x, y); ok {
		t.Fatal("nil prev accepted")
	}
	if ok, reason := CanWarmStart(prev, cfg, x, y); !ok {
		t.Fatalf("same-schema same-data warm start rejected: %s", reason)
	}

	archCfg := cfg
	archCfg.Hidden = []int{8, 4}
	if ok, reason := CanWarmStart(prev, archCfg, x, y); ok || reason == "" {
		t.Fatalf("architecture change accepted (%q)", reason)
	}

	wide := linalg.NewMatrix(x.Rows, x.Cols+2)
	if ok, reason := CanWarmStart(prev, cfg, wide, y); ok || reason == "" {
		t.Fatalf("schema change accepted (%q)", reason)
	}

	// Shift every feature far beyond the drift tolerance.
	shifted := x.Clone()
	for i := range shifted.Data {
		shifted.Data[i] += 1e6
	}
	if ok, reason := CanWarmStart(prev, cfg, shifted, y); ok || reason == "" {
		t.Fatalf("drifted inputs accepted (%q)", reason)
	}

	// TrainWarm on drifted data must fall back to a cold start and still
	// produce a valid model (fresh standardizer fitted to the new data).
	coldCfg := cfg
	coldCfg.Epochs = 2
	m, err := TrainWarm(coldCfg, shifted, y, nil, nil, prev)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mean[0] == prev.Mean[0] {
		t.Fatal("fallback cold start reused the stale standardizer")
	}
}
