// Package mlp implements the paper's multilayer-perceptron performance
// function (Table 5): a fully-connected network with ReLU activations,
// batch normalization and dropout, trained with Adam on RMSE loss, with the
// same early stopping (10 rounds) as the other models. Inputs are
// standardized internally; training parallelizes the batch matrix products
// through internal/linalg.
package mlp

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"

	"github.com/hpc-repro/aiio/internal/linalg"
	"github.com/hpc-repro/aiio/internal/parallel"
)

// Config holds the architecture and optimizer settings. The default Hidden
// sizes reproduce Table 5 of the paper.
type Config struct {
	// Hidden lists the widths of the hidden dense layers.
	Hidden []int
	// Dropout is the drop probability applied after each normalized hidden
	// block.
	Dropout float64
	// LearningRate is the Adam step size.
	LearningRate float64
	// Epochs is the maximum number of passes over the training data.
	Epochs int
	// BatchSize is the minibatch size.
	BatchSize int
	// EarlyStoppingRounds stops training when the eval RMSE has not
	// improved for this many epochs; the best-epoch weights are restored.
	EarlyStoppingRounds int
	Seed                int64
	// ReferenceKernels routes training through the original per-row scalar
	// forward/backward loops instead of the blocked GEMM fast path. The two
	// paths compute the same gradients up to FP reassociation (the fast path
	// pairs rows and fuses multiply-adds); this flag exists for equivalence
	// tests, in the spirit of gbdt's DisableHistSubtraction.
	ReferenceKernels bool
	// WarmDriftTol is the input-drift score above which CanWarmStart
	// rejects seeding from a previous model (0 means DefaultWarmDriftTol).
	WarmDriftTol float64
}

// DefaultConfig returns the Table 5 architecture with typical optimizer
// settings.
func DefaultConfig() Config {
	return Config{
		Hidden:              []int{90, 89, 69, 49, 29, 9},
		Dropout:             0.2,
		LearningRate:        1e-3,
		Epochs:              200,
		BatchSize:           64,
		EarlyStoppingRounds: 10,
		Seed:                1,
	}
}

// DenseState is the serializable state of one dense layer.
type DenseState struct {
	In, Out int
	W       []float64 // Out*In, row-major by output unit
	B       []float64 // Out
}

// BNState is the serializable state of one batch-normalization layer.
type BNState struct {
	Dim         int
	Gamma, Beta []float64
	Mean, Var   []float64 // running statistics for inference
}

// Model is a trained MLP. The exported fields make it gob-serializable; the
// unexported optimizer state lives only during training.
type Model struct {
	Config Config
	Mean   []float64 // input standardization
	Std    []float64
	// ConstantCols lists input columns whose training variance was zero;
	// their Std is clamped to 1 so standardization is a no-op for them
	// instead of a divide-by-zero NaN.
	ConstantCols []int
	Dense        []DenseState // len(Hidden)+1 layers; last maps to 1 output
	BN           []BNState    // one per hidden layer except the first
	YMean        float64      // target centering
	YStd         float64
	// TrainLoss and EvalLoss record per-epoch RMSE curves.
	TrainLoss []float64
	EvalLoss  []float64
	BestEpoch int

	// invStd caches 1/Std with a unit-scale guard for zero or non-finite
	// entries (legacy serialized models predate the fit-time clamp). Both
	// fields are unexported, so gob ignores them and the zero value works
	// for decoded models.
	invOnce  sync.Once
	invStd   []float64
	stdShift []float64
	// scratch pools per-worker forward buffers so batch inference reuses
	// activation matrices instead of allocating per dense layer per shard.
	scratch sync.Pool
}

// inputInvStd returns the cached per-column reciprocal of Std. Entries that
// are zero, negative, or non-finite fall back to 1 so standardization can
// never manufacture a NaN at inference time.
func (m *Model) inputInvStd() []float64 {
	m.invOnce.Do(func() {
		inv := make([]float64, len(m.Std))
		for j, s := range m.Std {
			if s > 0 && !math.IsInf(s, 1) {
				inv[j] = 1 / s
			} else {
				inv[j] = 1
			}
		}
		m.invStd = inv
		shift := make([]float64, len(m.Std))
		for j := range shift {
			shift[j] = -m.Mean[j] * inv[j]
		}
		m.stdShift = shift
	})
	return m.invStd
}

// fwdScratch is one worker's reusable forward-pass state: the standardized
// input block, two ping-pong activation matrices, and the per-call fused
// BN scale/shift vectors.
type fwdScratch struct {
	xs           linalg.Matrix
	ping, pong   linalg.Matrix
	scale, shift []float64
}

// reshape resizes m to rows x cols, reusing its backing array when large
// enough, and returns it. Contents are unspecified after the call.
func reshape(m *linalg.Matrix, rows, cols int) *linalg.Matrix {
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
	return m
}

func (m *Model) getScratch() *fwdScratch {
	if s, ok := m.scratch.Get().(*fwdScratch); ok {
		return s
	}
	return &fwdScratch{}
}

func (m *Model) putScratch(s *fwdScratch) { m.scratch.Put(s) }

// adam is per-tensor Adam state.
type adam struct {
	m, v []float64
	t    int
}

func newAdam(n int) *adam { return &adam{m: make([]float64, n), v: make([]float64, n)} }

// step applies one Adam update. The fast path runs the vectorized
// linalg.AdamStep; reference keeps the original scalar loop (with the
// textbook bias-correction divisions) as the equivalence-mode baseline.
func (a *adam) step(w, g []float64, lr float64, reference bool) {
	a.t++
	b1, b2, eps := 0.9, 0.999, 1e-8
	c1 := 1 - math.Pow(b1, float64(a.t))
	c2 := 1 - math.Pow(b2, float64(a.t))
	if !reference {
		linalg.AdamStep(w, a.m, a.v, g, b1, b2, c1, c2, lr, eps)
		return
	}
	for i := range w {
		a.m[i] = b1*a.m[i] + (1-b1)*g[i]
		a.v[i] = b2*a.v[i] + (1-b2)*g[i]*g[i]
		w[i] -= lr * (a.m[i] / c1) / (math.Sqrt(a.v[i]/c2) + eps)
	}
}

// Train fits the network on x/y with eval-based early stopping. evalX may be
// nil to train the full epoch budget.
func Train(cfg Config, x *linalg.Matrix, y []float64, evalX *linalg.Matrix, evalY []float64) (*Model, error) {
	return train(cfg, x, y, evalX, evalY, nil)
}

// TrainWarm fits like Train but seeds the network, standardizer, and target
// scaling from prev — the warm start that lets incremental retraining run on
// a reduced epoch budget. When CanWarmStart rejects prev (architecture or
// feature-schema mismatch, input drift past the tolerance) it falls back to
// a cold start with the same cfg. Before the first epoch the seed weights
// are scored on the eval set and held as the early-stopping baseline, so a
// diverging warm run can never ship worse weights than it started with
// (BestEpoch is -1 when the seed weights win).
func TrainWarm(cfg Config, x *linalg.Matrix, y []float64, evalX *linalg.Matrix, evalY []float64, prev *Model) (*Model, error) {
	if ok, _ := CanWarmStart(prev, cfg, x, y); !ok {
		prev = nil
	}
	return train(cfg, x, y, evalX, evalY, prev)
}

func train(cfg Config, x *linalg.Matrix, y []float64, evalX *linalg.Matrix, evalY []float64, prev *Model) (*Model, error) {
	if x.Rows == 0 {
		return nil, errors.New("mlp: empty training set")
	}
	if x.Rows != len(y) {
		panic(fmt.Sprintf("mlp: %d rows vs %d targets", x.Rows, len(y)))
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = DefaultConfig().Hidden
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 1e-3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	m := &Model{Config: cfg}
	if prev != nil {
		// Warm start: continue training prev's network on the new data. The
		// standardizer comes along with the weights — the first dense layer
		// was learned against prev's input scaling, so refitting it here
		// would silently invalidate every layer.
		m.adoptPrevious(prev)
	} else {
		m.fitStandardizer(x, y)

		// Build layers: Dense(h0)+ReLU, then for each further hidden width
		// Dense+BN+ReLU+Dropout, then Dense(1).
		dims := append([]int{x.Cols}, cfg.Hidden...)
		for i := 0; i < len(cfg.Hidden); i++ {
			m.Dense = append(m.Dense, initDense(dims[i], dims[i+1], rng))
			if i > 0 {
				m.BN = append(m.BN, initBN(dims[i+1]))
			}
		}
		m.Dense = append(m.Dense, initDense(dims[len(dims)-1], 1, rng))
	}

	// Optimizer state per tensor.
	opts := make([]*adam, 0, 2*len(m.Dense)+2*len(m.BN))
	tensors := make([][]float64, 0, cap(opts))
	grads := make([][]float64, 0, cap(opts))
	addTensor := func(w []float64) int {
		opts = append(opts, newAdam(len(w)))
		tensors = append(tensors, w)
		grads = append(grads, make([]float64, len(w)))
		return len(tensors) - 1
	}
	denseW := make([]int, len(m.Dense))
	denseB := make([]int, len(m.Dense))
	for i := range m.Dense {
		denseW[i] = addTensor(m.Dense[i].W)
		denseB[i] = addTensor(m.Dense[i].B)
	}
	bnG := make([]int, len(m.BN))
	bnB := make([]int, len(m.BN))
	for i := range m.BN {
		bnG[i] = addTensor(m.BN[i].Gamma)
		bnB[i] = addTensor(m.BN[i].Beta)
	}

	xs := m.standardize(x)
	ys := make([]float64, len(y))
	for i, v := range y {
		ys[i] = (v - m.YMean) / m.YStd
	}
	var evalXS *linalg.Matrix
	if evalX != nil && evalX.Rows > 0 {
		evalXS = m.standardize(evalX)
	}

	best := math.Inf(1)
	sinceBest := 0
	var snapshot *Model
	if prev != nil && evalXS != nil {
		// The warm seed is already a working model: score it before the
		// first epoch so early stopping restores it if no epoch improves.
		best = rmseSlices(m.predictStandardized(evalXS), evalY)
		m.BestEpoch = -1
		snapshot = m.cloneWeights()
	}

	order := make([]int, x.Rows)
	for i := range order {
		order[i] = i
	}

	// The fast path reuses one set of batch-sized scratch slabs for every
	// mini-batch of every epoch; only the reference path allocates per batch.
	var ts *trainScratch
	if !cfg.ReferenceKernels {
		ts = newTrainScratch(m, cfg.BatchSize, x.Cols)
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for lo := 0; lo < len(order); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(order) {
				hi = len(order)
			}
			batch := order[lo:hi]
			for _, g := range grads {
				for i := range g {
					g[i] = 0
				}
			}
			if ts != nil {
				m.trainStepFast(ts, batch, xs, ys, grads, denseW, denseB, bnG, bnB, rng)
			} else {
				xb := linalg.NewMatrix(len(batch), x.Cols)
				yb := make([]float64, len(batch))
				for bi, i := range batch {
					copy(xb.Row(bi), xs.Row(i))
					yb[bi] = ys[i]
				}
				m.trainStep(xb, yb, grads, denseW, denseB, bnG, bnB, rng)
			}
			for i := range tensors {
				opts[i].step(tensors[i], grads[i], cfg.LearningRate, cfg.ReferenceKernels)
			}
		}

		m.TrainLoss = append(m.TrainLoss, m.rmseStandardized(xs, ys))
		if evalXS != nil {
			e := rmseSlices(m.predictStandardized(evalXS), evalY)
			m.EvalLoss = append(m.EvalLoss, e)
			if e < best-1e-12 {
				best = e
				m.BestEpoch = epoch
				sinceBest = 0
				snapshot = m.cloneWeights()
			} else {
				sinceBest++
				if cfg.EarlyStoppingRounds > 0 && sinceBest >= cfg.EarlyStoppingRounds {
					break
				}
			}
		} else {
			m.BestEpoch = epoch
		}
	}
	if snapshot != nil {
		m.restoreWeights(snapshot)
	}
	return m, nil
}

func initDense(in, out int, rng *rand.Rand) DenseState {
	d := DenseState{In: in, Out: out, W: make([]float64, in*out), B: make([]float64, out)}
	// He initialization for ReLU networks.
	scale := math.Sqrt(2 / float64(in))
	for i := range d.W {
		d.W[i] = rng.NormFloat64() * scale
	}
	return d
}

func initBN(dim int) BNState {
	bn := BNState{
		Dim:   dim,
		Gamma: make([]float64, dim),
		Beta:  make([]float64, dim),
		Mean:  make([]float64, dim),
		Var:   make([]float64, dim),
	}
	for i := range bn.Gamma {
		bn.Gamma[i] = 1
		bn.Var[i] = 1
	}
	return bn
}

func (m *Model) fitStandardizer(x *linalg.Matrix, y []float64) {
	m.Mean = make([]float64, x.Cols)
	m.Std = make([]float64, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			m.Mean[j] += v
		}
	}
	n := float64(x.Rows)
	for j := range m.Mean {
		m.Mean[j] /= n
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			d := v - m.Mean[j]
			m.Std[j] += d * d
		}
	}
	for j := range m.Std {
		m.Std[j] = math.Sqrt(m.Std[j] / n)
		if m.Std[j] < 1e-12 {
			m.Std[j] = 1
			m.ConstantCols = append(m.ConstantCols, j)
		}
	}
	m.YMean = linalg.Mean(y)
	s := 0.0
	for _, v := range y {
		d := v - m.YMean
		s += d * d
	}
	m.YStd = math.Sqrt(s / n)
	if m.YStd < 1e-12 {
		m.YStd = 1
	}
}

func (m *Model) standardize(x *linalg.Matrix) *linalg.Matrix {
	return m.standardizeInto(linalg.NewMatrix(x.Rows, x.Cols), x)
}

// standardizeInto writes the standardized rows of x into dst (resized as
// needed) using the guarded reciprocal stddev.
func (m *Model) standardizeInto(dst, x *linalg.Matrix) *linalg.Matrix {
	inv := m.inputInvStd()
	out := reshape(dst, x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		// (v-mean)/std computed as v*inv - mean*inv with a cached shift
		// vector — one fused multiply-add per element.
		linalg.ScaleShiftInto(out.Row(i), x.Row(i), inv, m.stdShift)
	}
	return out
}

// denseForward computes y = x·Wᵀ + b.
func denseForward(d *DenseState, x *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(x.Rows, d.Out)
	for i := 0; i < x.Rows; i++ {
		xrow := x.Row(i)
		orow := out.Row(i)
		for o := 0; o < d.Out; o++ {
			w := d.W[o*d.In : (o+1)*d.In]
			orow[o] = linalg.Dot(w, xrow) + d.B[o]
		}
	}
	return out
}

// denseBackward accumulates parameter gradients and returns dL/dx.
func denseBackward(d *DenseState, x, gradOut *linalg.Matrix, gw, gb []float64) *linalg.Matrix {
	gradIn := linalg.NewMatrix(x.Rows, d.In)
	for i := 0; i < x.Rows; i++ {
		xrow := x.Row(i)
		grow := gradOut.Row(i)
		girow := gradIn.Row(i)
		for o := 0; o < d.Out; o++ {
			g := grow[o]
			if g == 0 {
				continue
			}
			gb[o] += g
			w := d.W[o*d.In : (o+1)*d.In]
			gwRow := gw[o*d.In : (o+1)*d.In]
			for j, xv := range xrow {
				gwRow[j] += g * xv
				girow[j] += g * w[j]
			}
		}
	}
	return gradIn
}

// bnForwardTrain normalizes per batch and updates running statistics.
// It returns the output plus the caches needed for backward.
func bnForwardTrain(bn *BNState, x *linalg.Matrix) (out *linalg.Matrix, xhat *linalg.Matrix, mean, invStd []float64) {
	n := float64(x.Rows)
	mean = make([]float64, bn.Dim)
	variance := make([]float64, bn.Dim)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			d := v - mean[j]
			variance[j] += d * d
		}
	}
	invStd = make([]float64, bn.Dim)
	const momentum = 0.9
	for j := range variance {
		variance[j] /= n
		invStd[j] = 1 / math.Sqrt(variance[j]+1e-5)
		bn.Mean[j] = momentum*bn.Mean[j] + (1-momentum)*mean[j]
		bn.Var[j] = momentum*bn.Var[j] + (1-momentum)*variance[j]
	}
	xhat = linalg.NewMatrix(x.Rows, bn.Dim)
	out = linalg.NewMatrix(x.Rows, bn.Dim)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		xrow := xhat.Row(i)
		orow := out.Row(i)
		for j, v := range row {
			xrow[j] = (v - mean[j]) * invStd[j]
			orow[j] = bn.Gamma[j]*xrow[j] + bn.Beta[j]
		}
	}
	return out, xhat, mean, invStd
}

// bnForwardEval normalizes with running statistics.
func bnForwardEval(bn *BNState, x *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(x.Rows, bn.Dim)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		orow := out.Row(i)
		for j, v := range row {
			xhat := (v - bn.Mean[j]) / math.Sqrt(bn.Var[j]+1e-5)
			orow[j] = bn.Gamma[j]*xhat + bn.Beta[j]
		}
	}
	return out
}

// bnBackward computes dL/dx and accumulates gamma/beta gradients.
func bnBackward(bn *BNState, xhat, gradOut *linalg.Matrix, invStd []float64, gGamma, gBeta []float64) *linalg.Matrix {
	n := float64(gradOut.Rows)
	sumG := make([]float64, bn.Dim)
	sumGX := make([]float64, bn.Dim)
	for i := 0; i < gradOut.Rows; i++ {
		grow := gradOut.Row(i)
		xrow := xhat.Row(i)
		for j, g := range grow {
			gGamma[j] += g * xrow[j]
			gBeta[j] += g
			sumG[j] += g
			sumGX[j] += g * xrow[j]
		}
	}
	gradIn := linalg.NewMatrix(gradOut.Rows, bn.Dim)
	for i := 0; i < gradOut.Rows; i++ {
		grow := gradOut.Row(i)
		xrow := xhat.Row(i)
		orow := gradIn.Row(i)
		for j, g := range grow {
			orow[j] = bn.Gamma[j] * invStd[j] * (g - sumG[j]/n - xrow[j]*sumGX[j]/n)
		}
	}
	return gradIn
}

// trainStep runs one forward/backward pass on a standardized batch,
// accumulating gradients into grads (indexed by the tensor ids). This is
// the reference path (Config.ReferenceKernels): per-row scalar loops with
// per-batch allocations, kept as the equivalence baseline for the blocked
// trainStepFast in backprop.go.
func (m *Model) trainStep(xb *linalg.Matrix, yb []float64, grads [][]float64,
	denseW, denseB, bnG, bnB []int, rng *rand.Rand) {

	nHidden := len(m.Config.Hidden)
	acts := make([]*linalg.Matrix, 0, 2*nHidden+2) // inputs to each dense layer
	reluMask := make([]*linalg.Matrix, nHidden)    // post-ReLU masks
	dropMask := make([]*linalg.Matrix, nHidden)    // dropout masks
	bnXhat := make([]*linalg.Matrix, len(m.BN))    // BN caches
	bnInvStd := make([][]float64, len(m.BN))

	h := xb
	for l := 0; l < nHidden; l++ {
		acts = append(acts, h)
		h = denseForward(&m.Dense[l], h)
		if l > 0 {
			var xhat *linalg.Matrix
			var invStd []float64
			h, xhat, _, invStd = bnForwardTrain(&m.BN[l-1], h)
			bnXhat[l-1] = xhat
			bnInvStd[l-1] = invStd
		}
		// ReLU.
		mask := linalg.NewMatrix(h.Rows, h.Cols)
		for i := range h.Data {
			if h.Data[i] > 0 {
				mask.Data[i] = 1
			} else {
				h.Data[i] = 0
			}
		}
		reluMask[l] = mask
		// Dropout (inverted) on normalized hidden blocks.
		if l > 0 && m.Config.Dropout > 0 {
			dm := linalg.NewMatrix(h.Rows, h.Cols)
			keep := 1 - m.Config.Dropout
			for i := range h.Data {
				if rng.Float64() < keep {
					dm.Data[i] = 1 / keep
					h.Data[i] *= dm.Data[i]
				} else {
					h.Data[i] = 0
				}
			}
			dropMask[l] = dm
		}
	}
	acts = append(acts, h)
	out := denseForward(&m.Dense[nHidden], h)

	// MSE gradient on the single output.
	grad := linalg.NewMatrix(out.Rows, 1)
	inv := 1 / float64(out.Rows)
	for i := 0; i < out.Rows; i++ {
		grad.Set(i, 0, (out.At(i, 0)-yb[i])*inv)
	}

	g := denseBackward(&m.Dense[nHidden], acts[nHidden], grad,
		grads[denseW[nHidden]], grads[denseB[nHidden]])
	for l := nHidden - 1; l >= 0; l-- {
		if dropMask[l] != nil {
			for i := range g.Data {
				g.Data[i] *= dropMask[l].Data[i]
			}
		}
		for i := range g.Data {
			g.Data[i] *= reluMask[l].Data[i]
		}
		if l > 0 {
			g = bnBackward(&m.BN[l-1], bnXhat[l-1], g, bnInvStd[l-1],
				grads[bnG[l-1]], grads[bnB[l-1]])
		}
		g = denseBackward(&m.Dense[l], acts[l], g, grads[denseW[l]], grads[denseB[l]])
	}
}

// predictStandardized runs inference on already-standardized inputs,
// returning predictions in the original target scale.
func (m *Model) predictStandardized(xs *linalg.Matrix) []float64 {
	out := make([]float64, xs.Rows)
	sc := m.getScratch()
	m.forwardStandardized(xs, out, sc)
	m.putScratch(sc)
	return out
}

// forwardStandardized runs the eval forward pass over the standardized
// block xs using one worker's scratch buffers, writing target-scale
// predictions into out (len(out) == xs.Rows). Dense layers run on the
// tiled linalg.MulTInto kernel; activations ping-pong between the two
// scratch matrices so the pass allocates nothing in steady state. xs is
// not modified.
func (m *Model) forwardStandardized(xs *linalg.Matrix, out []float64, sc *fwdScratch) {
	nHidden := len(m.Config.Hidden)
	h := xs
	bufs := [2]*linalg.Matrix{&sc.ping, &sc.pong}
	which := 0
	for l := 0; l <= nHidden; l++ {
		d := &m.Dense[l]
		dst := reshape(bufs[which], h.Rows, d.Out)
		which ^= 1
		// Rows run sequentially here: callers already shard batches across
		// the worker pool, so the nested parallelism of MulTInto would only
		// oversubscribe the cores.
		i := 0
		for ; i+1 < h.Rows; i += 2 {
			// Row pairs share one pass over the layer weights (two FMAs
			// per weight load); outputs are bitwise identical to the
			// one-row-at-a-time kernel.
			linalg.GemvT2(dst.Row(i), dst.Row(i+1), d.W, d.Out, d.In, h.Row(i), h.Row(i+1), d.B)
		}
		for ; i < h.Rows; i++ {
			linalg.GemvT(dst.Row(i), d.W, d.Out, d.In, h.Row(i), d.B)
		}
		h = dst
		if l == nHidden {
			break
		}
		if l > 0 {
			// Fold eval-mode BN into one scale/shift pair per column, then
			// apply it fused with the ReLU in a single pass over the block.
			bn := &m.BN[l-1]
			if cap(sc.scale) < bn.Dim {
				sc.scale = make([]float64, bn.Dim)
				sc.shift = make([]float64, bn.Dim)
			}
			scale := sc.scale[:bn.Dim]
			shift := sc.shift[:bn.Dim]
			for j := 0; j < bn.Dim; j++ {
				s := bn.Gamma[j] / math.Sqrt(bn.Var[j]+1e-5)
				scale[j] = s
				shift[j] = bn.Beta[j] - bn.Mean[j]*s
			}
			for i := 0; i < h.Rows; i++ {
				linalg.ScaleShiftReLU(h.Row(i), scale, shift)
			}
		} else {
			linalg.ReLU(h.Data)
		}
	}
	for i := range out {
		out[i] = h.Data[i]*m.YStd + m.YMean
	}
}

func (m *Model) rmseStandardized(xs *linalg.Matrix, ys []float64) float64 {
	pred := m.predictStandardized(xs)
	s := 0.0
	for i := range ys {
		d := (pred[i]-m.YMean)/m.YStd - ys[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(ys)))
}

func rmseSlices(pred, y []float64) float64 {
	s := 0.0
	for i := range y {
		d := pred[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(y)))
}

// Predict returns the prediction for one raw feature vector. It sits on
// the per-job advisory path, so the 1-row input and activation matrices
// come from the model's scratch pool instead of fresh allocations.
func (m *Model) Predict(x []float64) float64 {
	sc := m.getScratch()
	xs := reshape(&sc.xs, 1, len(x))
	inv := m.inputInvStd()
	linalg.ScaleShiftInto(xs.Data, x, inv, m.stdShift)
	var out [1]float64
	m.forwardStandardized(xs, out[:], sc)
	m.putScratch(sc)
	return out[0]
}

// predictParallelMinRows is the batch size below which sharding a forward
// pass across cores costs more than the dense products it saves.
const predictParallelMinRows = 64

// PredictBatch predicts every row of x, sharding large batches (SHAP
// coalition matrices, evaluation frames) across the bounded worker pool.
// Rows are independent at inference time (batch norm uses running
// statistics), so the sharded result is bitwise-identical to a sequential
// pass.
func (m *Model) PredictBatch(x *linalg.Matrix) []float64 {
	out := make([]float64, x.Rows)
	if x.Rows < predictParallelMinRows {
		sc := m.getScratch()
		xs := m.standardizeInto(&sc.xs, x)
		m.forwardStandardized(xs, out, sc)
		m.putScratch(sc)
		return out
	}
	parallel.For(x.Rows, 0, func(lo, hi int) {
		sc := m.getScratch()
		sub := &linalg.Matrix{Rows: hi - lo, Cols: x.Cols, Data: x.Data[lo*x.Cols : hi*x.Cols]}
		xs := m.standardizeInto(&sc.xs, sub)
		m.forwardStandardized(xs, out[lo:hi], sc)
		m.putScratch(sc)
	})
	return out
}

// cloneWeights snapshots the learned tensors (for early-stopping restore).
func (m *Model) cloneWeights() *Model {
	cp := &Model{}
	cp.Dense = make([]DenseState, len(m.Dense))
	for i, d := range m.Dense {
		cp.Dense[i] = DenseState{In: d.In, Out: d.Out,
			W: append([]float64(nil), d.W...), B: append([]float64(nil), d.B...)}
	}
	cp.BN = make([]BNState, len(m.BN))
	for i, bn := range m.BN {
		cp.BN[i] = BNState{Dim: bn.Dim,
			Gamma: append([]float64(nil), bn.Gamma...),
			Beta:  append([]float64(nil), bn.Beta...),
			Mean:  append([]float64(nil), bn.Mean...),
			Var:   append([]float64(nil), bn.Var...)}
	}
	return cp
}

// adoptPrevious deep-copies prev's standardizer, target scaling, and
// learned tensors into m as the warm-start seed. prev is never aliased: the
// previous generation may still be serving predictions concurrently.
func (m *Model) adoptPrevious(prev *Model) {
	m.Mean = append([]float64(nil), prev.Mean...)
	m.Std = append([]float64(nil), prev.Std...)
	m.ConstantCols = append([]int(nil), prev.ConstantCols...)
	m.YMean, m.YStd = prev.YMean, prev.YStd
	m.Dense = make([]DenseState, len(prev.Dense))
	for i, d := range prev.Dense {
		m.Dense[i] = DenseState{In: d.In, Out: d.Out,
			W: append([]float64(nil), d.W...), B: append([]float64(nil), d.B...)}
	}
	m.BN = make([]BNState, len(prev.BN))
	for i, bn := range prev.BN {
		m.BN[i] = BNState{Dim: bn.Dim,
			Gamma: append([]float64(nil), bn.Gamma...),
			Beta:  append([]float64(nil), bn.Beta...),
			Mean:  append([]float64(nil), bn.Mean...),
			Var:   append([]float64(nil), bn.Var...)}
	}
}

func (m *Model) restoreWeights(snap *Model) {
	for i := range m.Dense {
		copy(m.Dense[i].W, snap.Dense[i].W)
		copy(m.Dense[i].B, snap.Dense[i].B)
	}
	for i := range m.BN {
		copy(m.BN[i].Gamma, snap.BN[i].Gamma)
		copy(m.BN[i].Beta, snap.BN[i].Beta)
		copy(m.BN[i].Mean, snap.BN[i].Mean)
		copy(m.BN[i].Var, snap.BN[i].Var)
	}
}

// Save gob-encodes the model.
func (m *Model) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("mlp: encode model: %w", err)
	}
	return nil
}

// Load decodes a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("mlp: decode model: %w", err)
	}
	return &m, nil
}
