package mlp

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/hpc-repro/aiio/internal/linalg"
)

func synth(n, d int, seed int64) (*linalg.Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := linalg.NewMatrix(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.Float64() * 4
		}
		y[i] = 2*row[0] - row[1%d] + math.Sin(row[2%d]) + rng.NormFloat64()*0.05
	}
	return x, y
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Hidden = []int{32, 16, 8}
	cfg.Epochs = 60
	cfg.EarlyStoppingRounds = 15
	return cfg
}

func rmseOf(pred, y []float64) float64 {
	s := 0.0
	for i := range y {
		d := pred[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(y)))
}

func TestMLPLearnsRegression(t *testing.T) {
	x, y := synth(1200, 5, 1)
	ex, ey := synth(300, 5, 2)
	m, err := Train(smallConfig(), x, y, ex, ey)
	if err != nil {
		t.Fatal(err)
	}
	baseline := 0.0
	mean := linalg.Mean(ey)
	for _, v := range ey {
		baseline += (v - mean) * (v - mean)
	}
	baseline = math.Sqrt(baseline / float64(len(ey)))
	e := rmseOf(m.PredictBatch(ex), ey)
	if e > baseline*0.5 {
		t.Errorf("MLP eval RMSE %.4f not < half of baseline %.4f", e, baseline)
	}
	if len(m.TrainLoss) == 0 || len(m.EvalLoss) == 0 {
		t.Error("loss curves not recorded")
	}
}

func TestMLPDefaultArchitectureIsTable5(t *testing.T) {
	want := []int{90, 89, 69, 49, 29, 9}
	got := DefaultConfig().Hidden
	if len(got) != len(want) {
		t.Fatalf("Hidden = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Hidden = %v, want %v (Table 5)", got, want)
		}
	}
}

func TestMLPPredictSingleMatchesBatch(t *testing.T) {
	x, y := synth(400, 4, 3)
	cfg := smallConfig()
	cfg.Epochs = 10
	m, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := m.PredictBatch(x)
	for i := 0; i < x.Rows; i += 53 {
		single := m.Predict(x.Row(i))
		if math.Abs(single-batch[i]) > 1e-9 {
			t.Fatalf("row %d: single %.9f vs batch %.9f", i, single, batch[i])
		}
	}
}

func TestMLPDeterministicForSeed(t *testing.T) {
	x, y := synth(300, 4, 4)
	cfg := smallConfig()
	cfg.Epochs = 5
	a, _ := Train(cfg, x, y, nil, nil)
	b, _ := Train(cfg, x, y, nil, nil)
	pa, pb := a.PredictBatch(x), b.PredictBatch(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed, different predictions")
		}
	}
}

func TestMLPEarlyStoppingRestoresBest(t *testing.T) {
	x, y := synth(600, 5, 5)
	ex, ey := synth(200, 5, 6)
	cfg := smallConfig()
	cfg.Epochs = 500
	cfg.EarlyStoppingRounds = 5
	m, err := Train(cfg, x, y, ex, ey)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.EvalLoss) == 500 {
		t.Error("early stopping never triggered")
	}
	// Restored weights must reproduce (approximately) the best recorded
	// eval RMSE, not the last one.
	best := math.Inf(1)
	for _, e := range m.EvalLoss {
		if e < best {
			best = e
		}
	}
	got := rmseOf(m.PredictBatch(ex), ey)
	if math.Abs(got-best) > 1e-6 {
		t.Errorf("restored eval RMSE %.6f != best recorded %.6f", got, best)
	}
}

func TestMLPHandlesConstantFeatures(t *testing.T) {
	x, y := synth(200, 3, 7)
	for i := 0; i < x.Rows; i++ {
		x.Set(i, 2, 0) // constant zero column (sparsity)
	}
	cfg := smallConfig()
	cfg.Epochs = 5
	m, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Predict(x.Row(0))
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("prediction is not finite: %v", p)
	}
}

func TestMLPEmptyTrainingSetErrors(t *testing.T) {
	if _, err := Train(DefaultConfig(), linalg.NewMatrix(0, 3), nil, nil, nil); err == nil {
		t.Error("Train accepted an empty dataset")
	}
}

func TestMLPSaveLoadRoundTrip(t *testing.T) {
	x, y := synth(300, 4, 8)
	cfg := smallConfig()
	cfg.Epochs = 5
	m, err := Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := m.PredictBatch(x), got.PredictBatch(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("loaded model predicts differently")
		}
	}
}

func BenchmarkMLPTrainEpoch(b *testing.B) {
	x, y := synth(1000, 10, 1)
	cfg := smallConfig()
	cfg.Epochs = 1
	cfg.EarlyStoppingRounds = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(cfg, x, y, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}
