package mlp

import (
	"fmt"
	"math"

	"github.com/hpc-repro/aiio/internal/linalg"
)

// DefaultWarmDriftTol is the input-drift score above which warm starting is
// rejected: an average standardized mean shift of one sigma across features
// (or on the target) means the frozen standardizer — and with it every
// layer trained against it — no longer describes the data.
const DefaultWarmDriftTol = 1.0

// CanWarmStart reports whether prev can seed a warm-started fit of cfg on
// x/y, and if not, why: the architecture must match (same hidden widths),
// the feature schema must match (same input width as prev's standardizer),
// and the new data must not have drifted past the tolerance.
func CanWarmStart(prev *Model, cfg Config, x *linalg.Matrix, y []float64) (bool, string) {
	if prev == nil {
		return false, "no previous model"
	}
	hidden := cfg.Hidden
	if len(hidden) == 0 {
		hidden = DefaultConfig().Hidden
	}
	ph := prev.Config.Hidden
	if len(ph) == 0 {
		ph = DefaultConfig().Hidden
	}
	if len(hidden) != len(ph) {
		return false, fmt.Sprintf("architecture changed: %d hidden layers vs %d", len(hidden), len(ph))
	}
	for i := range hidden {
		if hidden[i] != ph[i] {
			return false, fmt.Sprintf("architecture changed: hidden[%d]=%d vs %d", i, hidden[i], ph[i])
		}
	}
	if x.Cols != len(prev.Mean) {
		return false, fmt.Sprintf("feature schema changed: %d columns vs %d", x.Cols, len(prev.Mean))
	}
	tol := cfg.WarmDriftTol
	if tol <= 0 {
		tol = DefaultWarmDriftTol
	}
	if d := prev.inputDrift(x, y); d > tol {
		return false, fmt.Sprintf("input drift %.3f exceeds tolerance %.3f", d, tol)
	}
	return true, ""
}

// inputDrift scores how far x/y moved from the distribution prev's
// standardizer was fit on: the mean over features of
// |mean_new - mean_prev| / std_prev (each clamped at 10 sigma so one wild
// counter cannot saturate the average alone), maxed with the same shift for
// the target. 0 means unchanged; DefaultWarmDriftTol calibrates "too far".
func (prev *Model) inputDrift(x *linalg.Matrix, y []float64) float64 {
	if x.Rows == 0 || x.Cols == 0 {
		return 0
	}
	n := float64(x.Rows)
	colSum := make([]float64, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			colSum[j] += v
		}
	}
	fdrift := 0.0
	for j, s := range colSum {
		std := prev.Std[j]
		if !(std > 1e-12) || math.IsInf(std, 1) {
			std = 1
		}
		d := math.Abs(s/n-prev.Mean[j]) / std
		if d > 10 {
			d = 10
		}
		fdrift += d
	}
	fdrift /= float64(x.Cols)
	ystd := prev.YStd
	if !(ystd > 1e-12) {
		ystd = 1
	}
	ydrift := math.Abs(linalg.Mean(y)-prev.YMean) / ystd
	if ydrift > 10 {
		ydrift = 10
	}
	return math.Max(fdrift, ydrift)
}
