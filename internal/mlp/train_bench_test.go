package mlp

import (
	"math/rand"
	"testing"

	"github.com/hpc-repro/aiio/internal/linalg"
)

// benchData synthesizes a dense regression problem at the fixture's shape
// (86 features) so the kernelized-vs-reference ratio can be profiled inside
// this package without the feature-pipeline fixtures.
func benchData(rows, cols int, seed int64) (*linalg.Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := linalg.NewMatrix(rows, cols)
	y := make([]float64, rows)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y {
		row := x.Row(i)
		y[i] = 3*row[0] - 2*row[1] + row[2]*row[3] + 0.1*rng.NormFloat64()
	}
	return x, y
}

// BenchmarkTrainProfile pits the kernelized training path against the
// ReferenceKernels scalar path on identical data and budgets.
func BenchmarkTrainProfile(b *testing.B) {
	x, y := benchData(675, 86, 1)
	ex, ey := benchData(225, 86, 2)
	for _, ref := range []bool{false, true} {
		name := "fast"
		if ref {
			name = "ref"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Epochs = 20
			cfg.EarlyStoppingRounds = 0
			cfg.ReferenceKernels = ref
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Train(cfg, x, y, ex, ey); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
