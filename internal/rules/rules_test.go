package rules

import (
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/workload"
)

func quietParams() iosim.Params {
	p := iosim.DefaultParams()
	p.NoiseSigma = 0
	return p
}

func runPattern(t *testing.T, id int) *darshan.Record {
	t.Helper()
	cfg := workload.Patterns()[id-1].Config.Scale(16, 4)
	rec, _ := cfg.Run("ior", int64(id), int64(id), quietParams())
	return rec
}

func hasRule(fs []Finding, name string) bool {
	for _, f := range fs {
		if f.Rule == name {
			return true
		}
	}
	return false
}

func TestRulesFireOnPatterns(t *testing.T) {
	cases := []struct {
		pattern int
		rule    string
	}{
		{1, "small-writes"},
		{2, "excessive-seeks"},
		{3, "small-writes"},
		{4, "excessive-seeks"},
		{5, "unaligned-access"},
		{6, "small-reads"},
	}
	for _, tc := range cases {
		rec := runPattern(t, tc.pattern)
		fs := Diagnose(rec)
		if !hasRule(fs, tc.rule) {
			names := make([]string, len(fs))
			for i, f := range fs {
				names[i] = f.Rule
			}
			t.Errorf("pattern %d: rule %q did not fire (got %v)", tc.pattern, tc.rule, names)
		}
	}
}

func TestRulesQuietOnGoodJob(t *testing.T) {
	cfg := workload.DefaultIOR()
	cfg.Write = true
	cfg.TransferSize = 1 * iosim.MiB
	cfg.BlockSize = 16 * iosim.MiB
	cfg.NProcs = 8
	cfg.FS = iosim.FSConfig{StripeSize: 4 * iosim.MiB, StripeWidth: 8}
	rec, _ := cfg.Run("ior", 1, 1, quietParams())
	fs := Diagnose(rec)
	for _, f := range fs {
		if f.Severity == Critical {
			t.Errorf("well-tuned job got critical finding %s: %s", f.Rule, f.Detail)
		}
	}
	if hasRule(fs, "small-writes") || hasRule(fs, "excessive-seeks") {
		t.Errorf("spurious findings on a well-tuned job: %+v", fs)
	}
}

func TestMetadataRule(t *testing.T) {
	rec := &darshan.Record{}
	rec.SetCounter(darshan.PosixOpens, 100)
	fs := Diagnose(rec)
	if !hasRule(fs, "metadata-load") {
		t.Error("metadata rule silent on a metadata-only job")
	}
	for _, f := range fs {
		if f.Rule == "metadata-load" && f.Severity != Critical {
			t.Error("metadata with no data should be critical")
		}
	}
}

func TestSeverityString(t *testing.T) {
	if Info.String() != "info" || Warning.String() != "warning" || Critical.String() != "critical" {
		t.Error("severity names wrong")
	}
	if Severity(9).String() == "" {
		t.Error("out-of-range severity should stringify")
	}
}

func TestEmptyRecordNoFindings(t *testing.T) {
	if fs := Diagnose(&darshan.Record{}); len(fs) != 0 {
		t.Errorf("empty record produced findings: %+v", fs)
	}
}

func TestFindingsCarryCountersAndDetails(t *testing.T) {
	rec := runPattern(t, 1)
	for _, f := range Diagnose(rec) {
		if f.Detail == "" || f.Rule == "" {
			t.Errorf("finding incomplete: %+v", f)
		}
	}
}
