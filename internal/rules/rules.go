// Package rules implements a static-rule I/O diagnosis in the style of
// Drishti (Bez et al., PDSW'22) and DigIO — the semi-automatic related work
// of Section 2.2. Each rule is a manually defined threshold trigger over the
// Darshan counters. The package exists as a comparison baseline: the paper's
// point is that such rules must be written and re-tuned by hand, whereas
// AIIO derives the per-job impact automatically from data; the experiments
// measure where the two agree and where static thresholds go quiet or fire
// spuriously.
package rules

import (
	"fmt"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// Severity grades a finding like Drishti does.
type Severity int

// Severity levels.
const (
	Info Severity = iota
	Warning
	Critical
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Finding is one triggered rule.
type Finding struct {
	Rule     string
	Severity Severity
	Detail   string
	// Counter is the primary counter behind the trigger.
	Counter darshan.CounterID
}

// Rule is a static trigger over a job record.
type Rule struct {
	Name string
	// Check returns a finding when the rule fires.
	Check func(rec *darshan.Record) (Finding, bool)
}

// thresholds of the default rule set; these are the hand-tuned constants a
// Drishti-style tool ships with.
const (
	smallAccessWarn   = 0.10 // fraction of accesses under 1 KiB
	smallAccessCrit   = 0.50
	seekRatioWarn     = 0.20 // seeks per data op
	unalignedWarn     = 0.10 // unaligned fraction
	metadataRatioWarn = 0.05 // metadata ops per data op
	randomSeqWarn     = 0.50 // sequential fraction below this is "random"
	stripeSmallWarn   = 1 << 20
)

// DefaultRules returns the built-in rule set.
func DefaultRules() []Rule {
	return []Rule{
		{Name: "small-writes", Check: checkSmallWrites},
		{Name: "small-reads", Check: checkSmallReads},
		{Name: "excessive-seeks", Check: checkSeeks},
		{Name: "unaligned-access", Check: checkUnaligned},
		{Name: "metadata-load", Check: checkMetadata},
		{Name: "random-writes", Check: checkRandomWrites},
		{Name: "random-reads", Check: checkRandomReads},
		{Name: "narrow-striping", Check: checkStriping},
		{Name: "rw-switching", Check: checkRWSwitches},
	}
}

// Diagnose runs every rule against the record.
func Diagnose(rec *darshan.Record) []Finding {
	var out []Finding
	for _, r := range DefaultRules() {
		if f, ok := r.Check(rec); ok {
			f.Rule = r.Name
			out = append(out, f)
		}
	}
	return out
}

func frac(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}

func checkSmallWrites(rec *darshan.Record) (Finding, bool) {
	writes := rec.Counter(darshan.PosixWrites)
	small := rec.Counter(darshan.PosixSizeWrite0_100) + rec.Counter(darshan.PosixSizeWrite100_1K)
	f := frac(small, writes)
	if f < smallAccessWarn {
		return Finding{}, false
	}
	sev := Warning
	if f >= smallAccessCrit {
		sev = Critical
	}
	return Finding{
		Severity: sev,
		Counter:  darshan.PosixSizeWrite100_1K,
		Detail:   fmt.Sprintf("%.0f%% of %g writes are under 1 KiB", f*100, writes),
	}, true
}

func checkSmallReads(rec *darshan.Record) (Finding, bool) {
	reads := rec.Counter(darshan.PosixReads)
	small := rec.Counter(darshan.PosixSizeRead0_100) + rec.Counter(darshan.PosixSizeRead100_1K)
	f := frac(small, reads)
	if f < smallAccessWarn {
		return Finding{}, false
	}
	sev := Warning
	if f >= smallAccessCrit {
		sev = Critical
	}
	return Finding{
		Severity: sev,
		Counter:  darshan.PosixSizeRead100_1K,
		Detail:   fmt.Sprintf("%.0f%% of %g reads are under 1 KiB", f*100, reads),
	}, true
}

func checkSeeks(rec *darshan.Record) (Finding, bool) {
	ops := rec.Counter(darshan.PosixReads) + rec.Counter(darshan.PosixWrites)
	f := frac(rec.Counter(darshan.PosixSeeks), ops)
	if f < seekRatioWarn {
		return Finding{}, false
	}
	sev := Warning
	if f >= 0.9 {
		sev = Critical
	}
	return Finding{
		Severity: sev,
		Counter:  darshan.PosixSeeks,
		Detail:   fmt.Sprintf("%.2f seeks per data operation", f),
	}, true
}

func checkUnaligned(rec *darshan.Record) (Finding, bool) {
	ops := rec.Counter(darshan.PosixReads) + rec.Counter(darshan.PosixWrites)
	f := frac(rec.Counter(darshan.PosixFileNotAligned), ops)
	if f < unalignedWarn {
		return Finding{}, false
	}
	return Finding{
		Severity: Warning,
		Counter:  darshan.PosixFileNotAligned,
		Detail:   fmt.Sprintf("%.0f%% of accesses not file-aligned", f*100),
	}, true
}

func checkMetadata(rec *darshan.Record) (Finding, bool) {
	ops := rec.Counter(darshan.PosixReads) + rec.Counter(darshan.PosixWrites)
	meta := rec.Counter(darshan.PosixOpens) + rec.Counter(darshan.PosixStats)
	if ops == 0 && meta > 0 {
		return Finding{Severity: Critical, Counter: darshan.PosixOpens,
			Detail: "metadata operations with no data transfer"}, true
	}
	f := frac(meta, ops)
	if f < metadataRatioWarn {
		return Finding{}, false
	}
	sev := Warning
	if f >= 0.5 {
		sev = Critical
	}
	return Finding{
		Severity: sev,
		Counter:  darshan.PosixOpens,
		Detail:   fmt.Sprintf("%.2f metadata ops per data operation", f),
	}, true
}

func checkRandomWrites(rec *darshan.Record) (Finding, bool) {
	writes := rec.Counter(darshan.PosixWrites)
	if writes < 2 {
		return Finding{}, false
	}
	f := frac(rec.Counter(darshan.PosixSeqWrites), writes-rec.Counter(darshan.NProcs))
	if f >= randomSeqWarn {
		return Finding{}, false
	}
	return Finding{
		Severity: Warning,
		Counter:  darshan.PosixSeqWrites,
		Detail:   fmt.Sprintf("only %.0f%% of writes are sequential", f*100),
	}, true
}

func checkRandomReads(rec *darshan.Record) (Finding, bool) {
	reads := rec.Counter(darshan.PosixReads)
	if reads < 2 {
		return Finding{}, false
	}
	f := frac(rec.Counter(darshan.PosixSeqReads), reads-rec.Counter(darshan.NProcs))
	if f >= randomSeqWarn {
		return Finding{}, false
	}
	return Finding{
		Severity: Warning,
		Counter:  darshan.PosixSeqReads,
		Detail:   fmt.Sprintf("only %.0f%% of reads are sequential", f*100),
	}, true
}

func checkStriping(rec *darshan.Record) (Finding, bool) {
	bytes := rec.TotalBytes()
	width := rec.Counter(darshan.LustreStripeWidth)
	if bytes < 256*(1<<20) || width > 1 {
		return Finding{}, false
	}
	if rec.Counter(darshan.LustreStripeSize) > stripeSmallWarn {
		return Finding{}, false
	}
	return Finding{
		Severity: Warning,
		Counter:  darshan.LustreStripeWidth,
		Detail:   fmt.Sprintf("%.0f MiB moved over a single OST with small stripes", bytes/(1<<20)),
	}, true
}

func checkRWSwitches(rec *darshan.Record) (Finding, bool) {
	ops := rec.Counter(darshan.PosixReads) + rec.Counter(darshan.PosixWrites)
	f := frac(rec.Counter(darshan.PosixRWSwitches), ops)
	if f < 0.2 {
		return Finding{}, false
	}
	return Finding{
		Severity: Warning,
		Counter:  darshan.PosixRWSwitches,
		Detail:   fmt.Sprintf("%.0f%% of operations switch between read and write", f*100),
	}, true
}
