package shap

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hpc-repro/aiio/internal/linalg"
)

// linearF builds a PredictFunc for f(x) = c0 + Σ w_j x_j.
func linearF(c0 float64, w []float64) PredictFunc {
	return func(x *linalg.Matrix) []float64 {
		out := make([]float64, x.Rows)
		for i := range out {
			out[i] = c0 + linalg.Dot(w, x.Row(i))
		}
		return out
	}
}

func TestExactLinearModelRecoversWeights(t *testing.T) {
	// For a linear model with zero background, phi_j = w_j * x_j exactly.
	w := []float64{2, -3, 0.5, 0, 7}
	x := []float64{1, 2, 0, 4, -1} // feature 2 is zero -> inactive
	e := New(linearF(10, w), nil, DefaultConfig())
	ex := e.Explain(x)
	if !ex.Exact {
		t.Fatal("expected exact path for 4 active features")
	}
	for j := range x {
		want := w[j] * x[j]
		if math.Abs(ex.Phi[j]-want) > 1e-9 {
			t.Errorf("phi[%d] = %v, want %v", j, ex.Phi[j], want)
		}
	}
	if ex.Base != 10 {
		t.Errorf("base = %v, want 10", ex.Base)
	}
	if err := ex.AdditivityError(); err > 1e-9 {
		t.Errorf("additivity error %v", err)
	}
}

func TestZeroFeaturesGetExactlyZero(t *testing.T) {
	// The robustness property (Section 3.3): zero counters must receive
	// exactly zero contribution under any model, including interactions.
	f := func(x *linalg.Matrix) []float64 {
		out := make([]float64, x.Rows)
		for i := range out {
			r := x.Row(i)
			out[i] = r[0]*r[1] + math.Sin(r[2]) + r[3]*r[3]
		}
		return out
	}
	x := []float64{1.5, 0, 2.5, 0}
	ex := New(f, nil, DefaultConfig()).Explain(x)
	if ex.Phi[1] != 0 || ex.Phi[3] != 0 {
		t.Errorf("zero features got contributions: %v", ex.Phi)
	}
	if err := ex.AdditivityError(); err > 1e-9 {
		t.Errorf("additivity error %v", err)
	}
}

func TestSymmetryAxiom(t *testing.T) {
	// Two features with identical roles must get identical Shapley values.
	f := func(x *linalg.Matrix) []float64 {
		out := make([]float64, x.Rows)
		for i := range out {
			r := x.Row(i)
			out[i] = (r[0] + r[1]) * r[2]
		}
		return out
	}
	x := []float64{3, 3, 2}
	ex := New(f, nil, DefaultConfig()).Explain(x)
	if math.Abs(ex.Phi[0]-ex.Phi[1]) > 1e-9 {
		t.Errorf("symmetric features differ: %v vs %v", ex.Phi[0], ex.Phi[1])
	}
}

func TestSingleActiveFeature(t *testing.T) {
	w := []float64{5, 1}
	x := []float64{2, 0}
	ex := New(linearF(1, w), nil, DefaultConfig()).Explain(x)
	if math.Abs(ex.Phi[0]-10) > 1e-12 || ex.Phi[1] != 0 {
		t.Errorf("phi = %v", ex.Phi)
	}
}

func TestNoActiveFeatures(t *testing.T) {
	x := []float64{0, 0, 0}
	ex := New(linearF(4, []float64{1, 1, 1}), nil, DefaultConfig()).Explain(x)
	for j, p := range ex.Phi {
		if p != 0 {
			t.Errorf("phi[%d] = %v, want 0", j, p)
		}
	}
	if ex.Base != 4 || ex.FX != 4 {
		t.Errorf("base/fx = %v/%v", ex.Base, ex.FX)
	}
}

func TestNonZeroBackground(t *testing.T) {
	// Features equal to a non-zero background are inactive.
	w := []float64{1, 1}
	bg := []float64{5, 5}
	x := []float64{5, 7}
	ex := New(linearF(0, w), bg, DefaultConfig()).Explain(x)
	if ex.Phi[0] != 0 {
		t.Errorf("feature equal to background got phi %v", ex.Phi[0])
	}
	if math.Abs(ex.Phi[1]-2) > 1e-9 {
		t.Errorf("phi[1] = %v, want 2", ex.Phi[1])
	}
}

func TestSampledMatchesExactOnLinearModel(t *testing.T) {
	// Force the sampling path with MaxExact=2 on a 20-feature linear model;
	// Kernel SHAP must still recover w_j x_j closely.
	rng := rand.New(rand.NewSource(5))
	n := 20
	w := make([]float64, n)
	x := make([]float64, n)
	for j := range w {
		w[j] = rng.NormFloat64()
		x[j] = rng.Float64()*3 + 0.5
	}
	cfg := DefaultConfig()
	cfg.MaxExact = 2
	cfg.NSamples = 6000
	ex := New(linearF(2, w), nil, cfg).Explain(x)
	if ex.Exact {
		t.Fatal("expected sampled path")
	}
	for j := range x {
		want := w[j] * x[j]
		if math.Abs(ex.Phi[j]-want) > 0.02*(1+math.Abs(want)) {
			t.Errorf("phi[%d] = %v, want %v", j, ex.Phi[j], want)
		}
	}
	if err := ex.AdditivityError(); err > 1e-6 {
		t.Errorf("additivity error %v", err)
	}
}

func TestSampledAdditivityOnNonlinearModel(t *testing.T) {
	f := func(x *linalg.Matrix) []float64 {
		out := make([]float64, x.Rows)
		for i := range out {
			r := x.Row(i)
			s := 0.0
			for j := 0; j < len(r)-1; j++ {
				s += r[j] * r[j+1]
			}
			out[i] = s + math.Exp(-r[0])
		}
		return out
	}
	rng := rand.New(rand.NewSource(6))
	x := make([]float64, 18)
	for j := range x {
		x[j] = rng.Float64() * 2
	}
	cfg := DefaultConfig()
	cfg.MaxExact = 4
	cfg.NSamples = 3000
	ex := New(f, nil, cfg).Explain(x)
	if err := ex.AdditivityError(); err > 1e-6 {
		t.Errorf("additivity error %v", err)
	}
}

func TestExplainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 16)
	w := make([]float64, 16)
	for j := range x {
		x[j] = rng.Float64()
		w[j] = rng.NormFloat64()
	}
	cfg := DefaultConfig()
	cfg.MaxExact = 2
	cfg.NSamples = 500
	a := New(linearF(0, w), nil, cfg).Explain(x)
	b := New(linearF(0, w), nil, cfg).Explain(x)
	for j := range a.Phi {
		if a.Phi[j] != b.Phi[j] {
			t.Fatal("same seed, different SHAP values")
		}
	}
}

func TestBinomAndSubsets(t *testing.T) {
	if binom(5, 2) != 10 || binom(6, 0) != 1 || binom(4, 5) != 0 {
		t.Error("binom wrong")
	}
	count := 0
	forEachSubset(5, 2, func(idx []int) {
		count++
		if len(idx) != 2 || idx[0] >= idx[1] {
			t.Errorf("bad subset %v", idx)
		}
	})
	if count != 10 {
		t.Errorf("enumerated %d subsets of C(5,2), want 10", count)
	}
}

func TestEfficiencyPropertyQuick(t *testing.T) {
	// Property: for random small inputs, base + sum(phi) == f(x).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		w := make([]float64, n)
		x := make([]float64, n)
		for j := range w {
			w[j] = rng.NormFloat64()
			if rng.Float64() < 0.3 {
				x[j] = 0
			} else {
				x[j] = rng.Float64() * 5
			}
		}
		model := func(m *linalg.Matrix) []float64 {
			out := make([]float64, m.Rows)
			for i := range out {
				r := m.Row(i)
				out[i] = linalg.Dot(w, r) + r[0]*r[n-1]
			}
			return out
		}
		ex := New(model, nil, DefaultConfig()).Explain(x)
		return ex.AdditivityError() < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExplainExact12(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := make([]float64, 12)
	x := make([]float64, 12)
	for j := range w {
		w[j] = rng.NormFloat64()
		x[j] = rng.Float64()
	}
	e := New(linearF(0, w), nil, DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Explain(x)
	}
}

func BenchmarkExplainSampled30(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := make([]float64, 30)
	x := make([]float64, 30)
	for j := range w {
		w[j] = rng.NormFloat64()
		x[j] = rng.Float64()
	}
	cfg := DefaultConfig()
	cfg.NSamples = 2048
	e := New(linearF(0, w), nil, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Explain(x)
	}
}

func TestExplainContextCancellation(t *testing.T) {
	// 20 active features forces the sampled path (4096 coalition rows), so
	// cancellation must be observed between evaluation chunks.
	w := make([]float64, 20)
	x := make([]float64, 20)
	for j := range w {
		w[j] = float64(j%5) - 2
		x[j] = float64(j + 1)
	}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	f := func(m *linalg.Matrix) []float64 {
		calls++
		if calls == 2 {
			cancel() // cancel mid-evaluation, after the first chunk
		}
		return linearF(1, w)(m)
	}
	_, err := New(f, nil, DefaultConfig()).ExplainContext(ctx, x)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The 4096-row batch must not have been evaluated to completion: 1 pair
	// call + a prefix of the 8 chunks.
	if calls > 5 {
		t.Errorf("%d model calls after cancellation at call 2", calls)
	}

	// Pre-cancelled context: no model call at all.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	before := calls
	if _, err := New(f, nil, DefaultConfig()).ExplainContext(ctx2, x); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v", err)
	}
	if calls != before {
		t.Errorf("model evaluated on a pre-cancelled context")
	}
}

func TestExplainContextChunkedMatchesSingleBatch(t *testing.T) {
	// A live (cancellable) context forces chunked evaluation; the result
	// must be bitwise-identical to the single-batch Background path, on both
	// the exact (few active) and sampled (many active) estimators.
	for _, m := range []int{8, 20} {
		w := make([]float64, m)
		x := make([]float64, m)
		for j := range w {
			w[j] = math.Sin(float64(j) + 1)
			x[j] = float64(j%7) + 0.25
		}
		f := func(mat *linalg.Matrix) []float64 {
			out := make([]float64, mat.Rows)
			for i := range out {
				r := mat.Row(i)
				out[i] = 0.5 + linalg.Dot(w, r) + 0.1*r[0]*r[m-1]
			}
			return out
		}
		plain := New(f, nil, DefaultConfig()).Explain(x)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		chunked, err := New(f, nil, DefaultConfig()).ExplainContext(ctx, x)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if plain.Base != chunked.Base || plain.FX != chunked.FX {
			t.Fatalf("m=%d: base/fx differ between chunked and single-batch", m)
		}
		for j := range plain.Phi {
			if plain.Phi[j] != chunked.Phi[j] {
				t.Fatalf("m=%d: phi[%d] differs: %v vs %v", m, j, plain.Phi[j], chunked.Phi[j])
			}
		}
	}
}
