package shap

import (
	"context"
	"fmt"

	"github.com/hpc-repro/aiio/internal/gbdt"
)

// Attributor is the common face of the package's two estimators: anything
// that can allocate f(x) − f(background) across the features of one input.
// Both the model-agnostic Kernel explainer (*Explainer) and the exact tree
// fast path (*TreeExplainer) implement it, so callers like core.Diagnose
// pick an estimator once (see ForModel) and explain through one call site.
type Attributor interface {
	// Attribute computes the SHAP values of x against the attributor's
	// background, honoring ctx's cancellation between units of model work.
	Attribute(ctx context.Context, x []float64) (Explanation, error)
}

// Mode selects which estimator ForModel returns.
type Mode string

// The explainer-selection modes of the -shap-mode flag.
const (
	// ModeAuto routes tree ensembles to the exact TreeSHAP fast path and
	// everything else to Kernel SHAP — the shap package's automatic
	// behavior, and the default.
	ModeAuto Mode = "auto"
	// ModeKernel forces the model-agnostic Kernel SHAP estimator for every
	// model (the paper's uniform setup).
	ModeKernel Mode = "kernel"
	// ModeTree requires the exact tree path; ForModel errors for a model
	// with no tree structure, which a degraded-capable caller records as
	// that model's failure.
	ModeTree Mode = "tree"
)

// ParseMode validates a -shap-mode flag value. The empty string means
// ModeAuto.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "":
		return ModeAuto, nil
	case ModeAuto, ModeKernel, ModeTree:
		return Mode(s), nil
	}
	return "", fmt.Errorf("shap: unknown mode %q (want auto, kernel or tree)", s)
}

// ForModel returns the estimator the mode selects for one model. tree is
// the model's boosted ensemble when it has one (nil for neural models); f
// is its batch predictor, used by the kernel path. The background follows
// the package convention: nil means all-zero (AIIO's filter).
func ForModel(f PredictFunc, tree *gbdt.Model, background []float64, mode Mode, cfg Config) (Attributor, error) {
	switch mode {
	case "", ModeAuto:
		if tree != nil {
			return NewTreeBackground(tree, background), nil
		}
		return New(f, background, cfg), nil
	case ModeKernel:
		return New(f, background, cfg), nil
	case ModeTree:
		if tree == nil {
			return nil, fmt.Errorf("shap: mode %q requires a tree ensemble, model has none", mode)
		}
		return NewTreeBackground(tree, background), nil
	}
	return nil, fmt.Errorf("shap: unknown mode %q", mode)
}

// Attribute implements Attributor on the Kernel explainer.
func (e *Explainer) Attribute(ctx context.Context, x []float64) (Explanation, error) {
	return e.ExplainContext(ctx, x)
}

// Attribute implements Attributor on the tree explainer. TreeSHAP needs no
// model evaluation at all, so the only cancellation point is up front.
func (e *TreeExplainer) Attribute(ctx context.Context, x []float64) (Explanation, error) {
	if err := ctx.Err(); err != nil {
		return Explanation{}, err
	}
	return e.Explain(x, e.background), nil
}
