package shap

import (
	"github.com/hpc-repro/aiio/internal/gbdt"
)

// TreeExplainer computes exact interventional SHAP values for a boosted
// tree ensemble against a single background reference — the tree-model
// fast path of the shap package (Lundberg et al., "Consistent
// Individualized Feature Attribution for Tree Ensembles").
//
// With one reference r, evaluating a coalition S replaces feature j by
// x_j when j ∈ S and by r_j otherwise. A root-to-leaf path then reaches its
// leaf iff every on-path feature taken from x satisfies the path's splits
// (the leaf's x-features, count p) and every on-path feature taken from r
// does too (r-features, count q). The game restricted to one leaf is a
// conjunction of literals, whose Shapley values are closed-form:
//
//	φ_i = +v·(p−1)!·q!/(p+q)!  for an x-feature i
//	φ_i = −v·p!·(q−1)!/(p+q)!  for an r-feature i
//
// Summing over all leaves of all trees gives exact Shapley values in
// O(Σ leaves × depth) — no sampling, no 2^M enumeration. The result matches
// the exact Kernel SHAP enumerator up to float rounding (see
// TestTreeSHAPMatchesExactKernel).
type TreeExplainer struct {
	model *gbdt.Model
}

// NewTree wraps a trained GBDT.
func NewTree(m *gbdt.Model) *TreeExplainer {
	return &TreeExplainer{model: m}
}

// pathLit is one split literal on the current root-to-leaf path: whether x
// and the reference satisfy it.
type pathLit struct {
	feature  int32
	xOK, rOK bool
}

// Explain computes SHAP values of x against the background (nil = zeros).
// Features equal to the background receive exactly zero contribution, as in
// the Kernel explainer.
func (e *TreeExplainer) Explain(x, background []float64) Explanation {
	bg := background
	if bg == nil {
		bg = make([]float64, len(x))
	}
	phi := make([]float64, len(x))
	base, fx := e.model.Base, e.model.Base

	var path []pathLit
	var walk func(t *gbdt.Tree, node int32)
	walk = func(t *gbdt.Tree, node int32) {
		n := &t.Nodes[node]
		if n.Feature < 0 {
			accumulateLeaf(n.Value, path, phi, &base, &fx)
			return
		}
		xLeft := x[n.Feature] <= n.Threshold
		rLeft := bg[n.Feature] <= n.Threshold
		path = append(path, pathLit{n.Feature, xLeft, rLeft})
		walk(t, n.Left)
		path = path[:len(path)-1]
		path = append(path, pathLit{n.Feature, !xLeft, !rLeft})
		walk(t, n.Right)
		path = path[:len(path)-1]
	}
	for _, t := range e.model.Trees {
		walk(t, 0)
	}

	// The sparsity rule: features equal to the background produce only
	// "free" literals (xOK == rOK at every node), so their phi is
	// structurally zero; clamp any float dust.
	for j := range phi {
		if x[j] == bg[j] {
			phi[j] = 0
		}
	}
	return Explanation{Phi: phi, Base: base, FX: fx, Exact: true}
}

// accumulateLeaf folds the path literals per feature and adds the leaf's
// closed-form Shapley terms.
func accumulateLeaf(v float64, path []pathLit, phi []float64, base, fx *float64) {
	// Fold repeated features: the leaf needs ALL its literals on a feature
	// satisfied by whichever side (x or r) supplies the value.
	type agg struct{ xOK, rOK bool }
	seen := make(map[int32]agg, len(path))
	for _, l := range path {
		a, ok := seen[l.feature]
		if !ok {
			a = agg{true, true}
		}
		a.xOK = a.xOK && l.xOK
		a.rOK = a.rOK && l.rOK
		seen[l.feature] = a
	}
	var xFeat, rFeat []int32
	for f, a := range seen {
		switch {
		case a.xOK && a.rOK:
			// Free feature: satisfied from either side.
		case a.xOK:
			xFeat = append(xFeat, f)
		case a.rOK:
			rFeat = append(rFeat, f)
		default:
			return // unreachable under every coalition
		}
	}
	p, q := len(xFeat), len(rFeat)
	if p == 0 {
		*base += v // reachable by the pure reference path (S = ∅)
	}
	if q == 0 {
		*fx += v // reachable by the pure x path (S = everything)
	}
	if p == 0 && q == 0 {
		return // free leaf: no attribution
	}
	if p > 0 {
		w := factRatio(p-1, q)
		for _, f := range xFeat {
			phi[f] += v * w
		}
	}
	if q > 0 {
		w := factRatio(p, q-1)
		for _, f := range rFeat {
			phi[f] -= v * w
		}
	}
}

// factRatio returns a!·b!/(a+b+1)! = 1/((a+b+1)·C(a+b, a)).
func factRatio(a, b int) float64 {
	return 1 / (float64(a+b+1) * binom(a+b, a))
}
