package shap

import (
	"sync"

	"github.com/hpc-repro/aiio/internal/gbdt"
)

// TreeExplainer computes exact interventional SHAP values for a boosted
// tree ensemble against a single background reference — the tree-model
// fast path of the shap package (Lundberg et al., "Consistent
// Individualized Feature Attribution for Tree Ensembles").
//
// With one reference r, evaluating a coalition S replaces feature j by
// x_j when j ∈ S and by r_j otherwise. A root-to-leaf path then reaches its
// leaf iff every on-path feature taken from x satisfies the path's splits
// (the leaf's x-features, count p) and every on-path feature taken from r
// does too (r-features, count q). The game restricted to one leaf is a
// conjunction of literals, whose Shapley values are closed-form:
//
//	φ_i = +v·(p−1)!·q!/(p+q)!  for an x-feature i
//	φ_i = −v·p!·(q−1)!/(p+q)!  for an r-feature i
//
// Summing over all leaves of all trees gives exact Shapley values in
// O(Σ leaves × depth) — no sampling, no 2^M enumeration, no model
// evaluation. The result matches the exact Kernel SHAP enumerator up to
// float rounding (see TestTreeSHAPMatchesExactKernel).
//
// The explainer keeps per-feature fold state and reuses it across calls
// (a mutex serializes Explain), so the steady-state cost is the traversal
// alone: a subtree in which some feature's literals can be satisfied by
// neither x nor r is unreachable under every coalition and is pruned
// without descending.
type TreeExplainer struct {
	model *gbdt.Model
	// background is the fixed reference of Attribute; nil means all-zero.
	background []float64

	mu sync.Mutex
	// Per-feature fold state of the current root-to-leaf path, reused
	// across calls. pathLits counts literals on the path per feature;
	// xBad/rBad count those violated when the feature comes from x / from
	// the reference. feats lists the distinct on-path features.
	pathLits, xBad, rBad []int32
	feats                []int32
}

// NewTree wraps a trained GBDT with the zero background.
func NewTree(m *gbdt.Model) *TreeExplainer {
	return &TreeExplainer{model: m}
}

// NewTreeBackground wraps a trained GBDT with a fixed background reference
// for Attribute (nil means all-zero, AIIO's filter).
func NewTreeBackground(m *gbdt.Model, background []float64) *TreeExplainer {
	return &TreeExplainer{model: m, background: background}
}

// Explain computes SHAP values of x against the background (nil = zeros).
// Features equal to the background receive exactly zero contribution, as in
// the Kernel explainer: such a feature's literals are satisfied by x and
// the reference alike, so it is never an x- or r-feature of any leaf.
func (e *TreeExplainer) Explain(x, background []float64) Explanation {
	bg := background
	if bg == nil {
		bg = make([]float64, len(x))
	}
	phi := make([]float64, len(x))

	e.mu.Lock()
	if len(e.pathLits) < len(x) {
		e.pathLits = make([]int32, len(x))
		e.xBad = make([]int32, len(x))
		e.rBad = make([]int32, len(x))
	}
	base, fx := e.model.Base, e.model.Base
	for _, t := range e.model.Trees {
		base, fx = e.walk(t, 0, x, bg, phi, base, fx)
	}
	e.mu.Unlock()

	// The robustness rule holds structurally (see above); the clamp keeps
	// the invariant exact even if a backend ever produced -0.0 dust.
	for j := range phi {
		if x[j] == bg[j] {
			phi[j] = 0
		}
	}
	return Explanation{Phi: phi, Base: base, FX: fx, Exact: true}
}

// walk descends one tree accumulating the closed-form leaf terms, threading
// base/fx through so a leaf reachable by the pure reference (p == 0) or the
// pure x path (q == 0) contributes to them.
func (e *TreeExplainer) walk(t *gbdt.Tree, node int32, x, bg, phi []float64, base, fx float64) (float64, float64) {
	f := t.Feature[node]
	if f < 0 {
		return e.leaf(t.Value[node], phi, base, fx)
	}
	thr := t.Threshold[node]
	xLeft := x[f] <= thr
	rLeft := bg[f] <= thr

	base, fx = e.branch(t, t.Left[node], f, xLeft, rLeft, x, bg, phi, base, fx)
	return e.branch(t, t.Right[node], f, !xLeft, !rLeft, x, bg, phi, base, fx)
}

// branch pushes one split literal (feature f, satisfied by x iff xOK and by
// the reference iff rOK), recurses, and pops. A feature whose on-path
// literals can be satisfied by neither side makes every leaf below
// unreachable under every coalition, so the subtree is pruned.
func (e *TreeExplainer) branch(t *gbdt.Tree, child, f int32, xOK, rOK bool, x, bg, phi []float64, base, fx float64) (float64, float64) {
	if !xOK && !rOK {
		return base, fx // the literal itself is unsatisfiable: dead subtree
	}
	if e.pathLits[f] == 0 {
		e.feats = append(e.feats, f)
	}
	e.pathLits[f]++
	if !xOK {
		e.xBad[f]++
	}
	if !rOK {
		e.rBad[f]++
	}
	if e.xBad[f] == 0 || e.rBad[f] == 0 {
		base, fx = e.walk(t, child, x, bg, phi, base, fx)
	} // else: conflicting literals on f — dead subtree, pruned
	e.pathLits[f]--
	if !xOK {
		e.xBad[f]--
	}
	if !rOK {
		e.rBad[f]--
	}
	if e.pathLits[f] == 0 {
		e.feats = e.feats[:len(e.feats)-1]
	}
	return base, fx
}

// leaf folds the distinct on-path features and adds the leaf's closed-form
// Shapley terms. Pruning guarantees no on-path feature is dead here.
func (e *TreeExplainer) leaf(v float64, phi []float64, base, fx float64) (float64, float64) {
	p, q := 0, 0
	for _, f := range e.feats {
		switch {
		case e.xBad[f] == 0 && e.rBad[f] == 0:
			// Free feature: satisfied from either side.
		case e.xBad[f] == 0:
			p++ // needs its value from x
		default:
			q++ // needs its value from the reference
		}
	}
	if p == 0 {
		base += v // reachable by the pure reference path (S = ∅)
	}
	if q == 0 {
		fx += v // reachable by the pure x path (S = everything)
	}
	if p == 0 && q == 0 {
		return base, fx // free leaf: no attribution
	}
	var wx, wr float64
	if p > 0 {
		wx = v * factRatio(p-1, q)
	}
	if q > 0 {
		wr = v * factRatio(p, q-1)
	}
	for _, f := range e.feats {
		switch {
		case e.xBad[f] == 0 && e.rBad[f] == 0:
		case e.xBad[f] == 0:
			phi[f] += wx
		default:
			phi[f] -= wr
		}
	}
	return base, fx
}

// factRatio returns a!·b!/(a+b+1)! = 1/((a+b+1)·C(a+b, a)).
func factRatio(a, b int) float64 {
	return 1 / (float64(a+b+1) * binom(a+b, a))
}
