package shap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hpc-repro/aiio/internal/gbdt"
	"github.com/hpc-repro/aiio/internal/linalg"
)

// trainSmallGBDT fits a small ensemble on a synthetic sparse problem.
func trainSmallGBDT(t testing.TB, n, d, rounds int, seed int64) (*gbdt.Model, *linalg.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := linalg.NewMatrix(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			if rng.Float64() < 0.3 {
				row[j] = 0
			} else {
				row[j] = rng.Float64() * 10
			}
		}
		y[i] = 2*row[0] - row[1%d] + row[2%d]*row[3%d]/10 + rng.NormFloat64()*0.05
	}
	cfg := gbdt.DefaultConfig(gbdt.LevelWise)
	cfg.Rounds = rounds
	cfg.MaxDepth = 4
	cfg.EarlyStoppingRounds = 0
	m, err := gbdt.Train(cfg, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m, x
}

func TestTreeSHAPLocalAccuracy(t *testing.T) {
	m, x := trainSmallGBDT(t, 600, 6, 25, 1)
	ex := NewTree(m)
	for i := 0; i < x.Rows; i += 41 {
		row := x.Row(i)
		got := ex.Explain(row, nil)
		if got.FX != m.Predict(row) {
			// FX is reconstructed leaf-by-leaf; allow rounding only.
			if math.Abs(got.FX-m.Predict(row)) > 1e-9 {
				t.Fatalf("row %d: FX %.10f vs Predict %.10f", i, got.FX, m.Predict(row))
			}
		}
		if err := got.AdditivityError(); err > 1e-9 {
			t.Fatalf("row %d: additivity error %v", i, err)
		}
		zero := make([]float64, x.Cols)
		if base := m.Predict(zero); math.Abs(got.Base-base) > 1e-9 {
			t.Fatalf("row %d: base %.10f vs f(0) %.10f", i, got.Base, base)
		}
	}
}

// TestTreeSHAPMatchesExactKernel is the cross-validation of the two exact
// estimators: the closed-form TreeSHAP must agree with brute-force coalition
// enumeration through the model-agnostic path.
func TestTreeSHAPMatchesExactKernel(t *testing.T) {
	m, x := trainSmallGBDT(t, 400, 5, 15, 2)
	tree := NewTree(m)
	kernelCfg := DefaultConfig()
	kernelCfg.MaxExact = 12 // 5 features: always exact
	kernel := New(m.PredictBatch, nil, kernelCfg)
	for i := 0; i < x.Rows; i += 29 {
		row := x.Row(i)
		a := tree.Explain(row, nil)
		b := kernel.Explain(row)
		if !b.Exact {
			t.Fatal("kernel path was not exact")
		}
		for j := range a.Phi {
			if math.Abs(a.Phi[j]-b.Phi[j]) > 1e-8 {
				t.Fatalf("row %d phi[%d]: tree %.10f vs kernel %.10f", i, j, a.Phi[j], b.Phi[j])
			}
		}
	}
}

func TestTreeSHAPZeroFeaturesGetZero(t *testing.T) {
	m, x := trainSmallGBDT(t, 500, 6, 20, 3)
	ex := NewTree(m)
	for i := 0; i < x.Rows; i += 17 {
		row := x.Row(i)
		got := ex.Explain(row, nil)
		for j, v := range row {
			if v == 0 && got.Phi[j] != 0 {
				t.Fatalf("row %d: zero feature %d got phi %v", i, j, got.Phi[j])
			}
		}
	}
}

func TestTreeSHAPNonZeroBackground(t *testing.T) {
	m, x := trainSmallGBDT(t, 400, 4, 10, 4)
	ex := NewTree(m)
	bg := []float64{1, 2, 3, 4}
	row := append([]float64(nil), x.Row(0)...)
	row[2] = bg[2] // equals background -> zero phi
	got := ex.Explain(row, bg)
	if got.Phi[2] != 0 {
		t.Errorf("feature at background value got phi %v", got.Phi[2])
	}
	if math.Abs(got.Base-m.Predict(bg)) > 1e-9 {
		t.Errorf("base %v vs f(bg) %v", got.Base, m.Predict(bg))
	}
	if err := got.AdditivityError(); err > 1e-9 {
		t.Errorf("additivity error %v", err)
	}
}

func TestTreeSHAPPropertyVsKernel(t *testing.T) {
	m, _ := trainSmallGBDT(t, 400, 5, 12, 5)
	tree := NewTree(m)
	kernel := New(m.PredictBatch, nil, DefaultConfig())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		row := make([]float64, 5)
		for j := range row {
			if rng.Float64() < 0.4 {
				row[j] = 0
			} else {
				row[j] = rng.Float64() * 12 // includes values outside training
			}
		}
		a := tree.Explain(row, nil)
		b := kernel.Explain(row)
		for j := range a.Phi {
			if math.Abs(a.Phi[j]-b.Phi[j]) > 1e-8 {
				return false
			}
		}
		return a.AdditivityError() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFactRatio(t *testing.T) {
	// a! b! / (a+b+1)!
	cases := []struct {
		a, b int
		want float64
	}{
		{0, 0, 1},
		{1, 0, 0.5},
		{0, 1, 0.5},
		{1, 1, 1.0 / 6},
		{2, 1, 1.0 / 12},
	}
	for _, c := range cases {
		if got := factRatio(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("factRatio(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func BenchmarkTreeSHAP(b *testing.B) {
	m, x := trainSmallGBDT(b, 2000, 20, 60, 1)
	ex := NewTree(m)
	row := x.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Explain(row, nil)
	}
}

func BenchmarkKernelSHAPSameModel(b *testing.B) {
	m, x := trainSmallGBDT(b, 2000, 20, 60, 1)
	cfg := DefaultConfig()
	cfg.NSamples = 2048
	cfg.MaxExact = 2
	ex := New(m.PredictBatch, nil, cfg)
	row := x.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Explain(row)
	}
}
