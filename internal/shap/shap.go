// Package shap implements Kernel SHAP (Lundberg & Lee, NeurIPS 2017) — the
// AI-interpretation method AIIO uses as its diagnosis function (Section 3.3,
// Eq. 4). Given a performance function f and a job's counter vector x, the
// explainer allocates f(x) − f(background) across the counters as Shapley
// values C_j: negative C_j marks a counter as an I/O bottleneck.
//
// Two estimators are provided behind one API:
//
//   - exact enumeration of all coalitions when the number of active
//     features is small (≤ MaxExact), which yields exact Shapley values;
//   - the Kernel SHAP weighted-least-squares estimator with paired
//     coalition sampling otherwise, solved with the efficiency constraint
//     (Σ C_j = f(x) − f(background)) eliminated analytically.
//
// The paper's sparsity rule is enforced structurally: features equal to the
// background (zero, for AIIO's zero background filter) are never perturbed
// and receive exactly zero contribution, which is the robustness property
// Section 3.3 contrasts with Gauge.
package shap

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sync"

	"github.com/hpc-repro/aiio/internal/linalg"
)

// PredictFunc evaluates the model on a batch of rows (one prediction per
// row). Batch evaluation lets tree ensembles and networks amortize work and
// parallelize internally.
type PredictFunc func(x *linalg.Matrix) []float64

// Config tunes the explainer.
type Config struct {
	// MaxExact is the largest active-feature count for which all 2^M
	// coalitions are enumerated (exact Shapley values). Above it the
	// sampling estimator runs.
	MaxExact int
	// NSamples is the coalition budget for the sampling estimator.
	NSamples int
	// Ridge is the regularization of the WLS solve.
	Ridge float64
	Seed  int64
}

// DefaultConfig matches the shap package's auto settings at AIIO's scale.
func DefaultConfig() Config {
	return Config{
		MaxExact: 12,
		NSamples: 4096,
		Ridge:    1e-9,
		Seed:     1,
	}
}

// Explanation is the diagnosis of one job under one performance function.
type Explanation struct {
	// Phi are the per-feature contributions C_j; exactly zero for features
	// equal to the background.
	Phi []float64
	// Base is E[f] — here f(background), the expected performance with no
	// counters active.
	Base float64
	// FX is f(x).
	FX float64
	// Exact records whether the exact enumerator ran.
	Exact bool
}

// AdditivityError returns |Base + Σ Phi − FX|, the local-accuracy residual
// (zero up to float rounding for both estimators by construction).
func (e *Explanation) AdditivityError() float64 {
	s := e.Base
	for _, p := range e.Phi {
		s += p
	}
	return math.Abs(s - e.FX)
}

// Explainer computes SHAP values against a fixed background. The
// coalition masks, the coalition input matrix and the WLS buffers live in
// a pool-shared scratch area borrowed per call, so the steady-state
// allocations of an Explain are the returned Phi slice and the model's
// own output batches. A mutex serializes concurrent Explain calls on one
// explainer; independent explainers (as core.Diagnose builds per model
// per job) never contend.
type Explainer struct {
	f          PredictFunc
	background []float64
	cfg        Config

	mu sync.Mutex
	sc *scratch // borrowed from scratchPool for the duration of one Explain
}

// scratchPool shares scratch slabs across all explainers. core.Diagnose
// builds a fresh explainer per (job, model) pair, and without sharing
// every diagnosis re-allocates — and the runtime re-zeroes — hundreds of
// kilobytes of coalition masks, input matrices and WLS buffers; borrowing
// per call keeps those slabs warm across jobs while staying safe for
// concurrent explainers.
var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

// scratch is the per-explainer reusable buffer set. Coalition masks are
// uint64 bitsets: coalition i occupies words [i*words, (i+1)*words) of the
// masks slab, where words = ceil(m/64) for m active features (a single word
// for AIIO's 45-counter schema).
type scratch struct {
	active  []int
	pair    []float64 // 2-row matrix backing for evalPair
	masks   []uint64
	weights []float64
	inputs  []float64 // coalition input matrix backing
	z       []float64 // WLS design matrix backing
	y, w    []float64
	perm    []int
	sizeW   []float64 // per-coalition-size Shapley weights
}

// growF returns buf resized to n floats, reusing its capacity; contents are
// unspecified (every caller fully overwrites).
func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// New creates an explainer. AIIO initializes the background filter to zero
// (Section 3.3); pass nil for an all-zero background of the given size at
// first Explain call.
func New(f PredictFunc, background []float64, cfg Config) *Explainer {
	if cfg.MaxExact <= 0 {
		cfg.MaxExact = DefaultConfig().MaxExact
	}
	if cfg.NSamples <= 0 {
		cfg.NSamples = DefaultConfig().NSamples
	}
	if cfg.Ridge <= 0 {
		cfg.Ridge = DefaultConfig().Ridge
	}
	return &Explainer{f: f, background: background, cfg: cfg}
}

// Explain computes the SHAP values of x.
func (e *Explainer) Explain(x []float64) Explanation {
	out, _ := e.ExplainContext(context.Background(), x)
	return out
}

// ExplainContext computes the SHAP values of x with cooperative
// cancellation: the model is evaluated in row chunks and ctx is checked
// between chunks, so a slow performance function cannot pin a worker past
// its deadline. On cancellation the partial explanation is discarded and
// ctx's error is returned. Chunked evaluation is bitwise-identical to a
// single batch call because every AIIO model predicts rows independently.
func (e *Explainer) ExplainContext(ctx context.Context, x []float64) (Explanation, error) {
	bg := e.background
	if bg == nil {
		bg = make([]float64, len(x))
	}
	if len(bg) != len(x) {
		panic(fmt.Sprintf("shap: background dim %d vs input dim %d", len(bg), len(x)))
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	e.sc = scratchPool.Get().(*scratch)
	defer func() {
		scratchPool.Put(e.sc)
		e.sc = nil
	}()

	// Active set: features differing from the background.
	active := e.sc.active[:0]
	for j := range x {
		if x[j] != bg[j] {
			active = append(active, j)
		}
	}
	e.sc.active = active

	out := Explanation{Phi: make([]float64, len(x))}
	base, fx, err := e.evalPair(ctx, bg, x)
	if err != nil {
		return Explanation{}, err
	}
	out.Base = base
	out.FX = fx

	switch {
	case len(active) == 0:
		return out, nil
	case len(active) == 1:
		out.Phi[active[0]] = fx - base
		out.Exact = true
		return out, nil
	case len(active) <= e.cfg.MaxExact:
		if err := e.exact(ctx, x, bg, active, &out); err != nil {
			return Explanation{}, err
		}
		return out, nil
	default:
		if err := e.sampled(ctx, x, bg, active, &out); err != nil {
			return Explanation{}, err
		}
		return out, nil
	}
}

// evalPair evaluates f on the background and the full input in one batch.
func (e *Explainer) evalPair(ctx context.Context, bg, x []float64) (base, fx float64, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	e.sc.pair = growF(e.sc.pair, 2*len(x))
	m := &linalg.Matrix{Rows: 2, Cols: len(x), Data: e.sc.pair}
	copy(m.Row(0), bg)
	copy(m.Row(1), x)
	p := e.f(m)
	return p[0], p[1], nil
}

// evalChunkRows is the row-chunk size of cancellable model evaluation; ctx
// is consulted between chunks.
const evalChunkRows = 512

// EvalChunked evaluates f on every row of inputs. When ctx can be cancelled
// the evaluation proceeds in chunks of evalChunkRows with a ctx check
// between chunks; a background context takes the single-call fast path.
// Both paths return identical values (row-independent models). The lime
// package shares this helper for its perturbation batches.
func EvalChunked(ctx context.Context, f PredictFunc, inputs *linalg.Matrix) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ctx.Done() == nil || inputs.Rows <= evalChunkRows {
		return f(inputs), nil
	}
	out := make([]float64, inputs.Rows)
	for lo := 0; lo < inputs.Rows; lo += evalChunkRows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := lo + evalChunkRows
		if hi > inputs.Rows {
			hi = inputs.Rows
		}
		sub := &linalg.Matrix{Rows: hi - lo, Cols: inputs.Cols, Data: inputs.Data[lo*inputs.Cols : hi*inputs.Cols]}
		copy(out[lo:hi], f(sub))
	}
	return out, nil
}

// exact enumerates all 2^M coalitions of the active features and computes
// exact Shapley values from the marginal contributions.
func (e *Explainer) exact(ctx context.Context, x, bg []float64, active []int, out *Explanation) error {
	m := len(active)
	n := 1 << m

	// Evaluate f on every coalition input (matrix backing reused).
	e.sc.inputs = growF(e.sc.inputs, n*len(x))
	inputs := &linalg.Matrix{Rows: n, Cols: len(x), Data: e.sc.inputs}
	for mask := 0; mask < n; mask++ {
		row := inputs.Row(mask)
		copy(row, bg)
		for v := uint64(mask); v != 0; v &= v - 1 {
			j := active[bits.TrailingZeros64(v)]
			row[j] = x[j]
		}
	}
	vals, err := EvalChunked(ctx, e.f, inputs)
	if err != nil {
		return err
	}

	// Precompute |S|!(M-|S|-1)!/M! per coalition size.
	weight := growF(e.sc.sizeW, m)
	e.sc.sizeW = weight
	for s := 0; s < m; s++ {
		weight[s] = 1 / (float64(m) * binom(m-1, s))
	}

	for b := 0; b < m; b++ {
		bit := 1 << b
		phi := 0.0
		for mask := 0; mask < n; mask++ {
			if mask&bit != 0 {
				continue
			}
			s := bits.OnesCount64(uint64(mask))
			phi += weight[s] * (vals[mask|bit] - vals[mask])
		}
		out.Phi[active[b]] = phi
	}
	out.Exact = true
	return nil
}

// binom returns C(n, k) as float64.
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// splitmix64 is Vigna's SplitMix64 generator. It exists because seeding
// math/rand's default lagged-Fibonacci source walks a 607-word warm-up
// (milliseconds across a diagnosis batch that builds one explainer per
// job/model pair), while SplitMix64 seeds in O(1) with a single add. It
// implements rand.Source64, so rand.Rand draws whole words from it.
type splitmix64 struct{ s uint64 }

func (s *splitmix64) Uint64() uint64 {
	s.s += 0x9e3779b97f4a7c15
	z := s.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *splitmix64) Seed(seed int64) { s.s = uint64(seed) }

// sampled runs the Kernel SHAP WLS estimator with paired coalition
// enumeration/sampling, following the shap package's KernelExplainer.
// Coalitions live as uint64 bitsets in the scratch slab; the coalition
// input matrix and the WLS design/target/weight buffers are reused across
// calls. The coalition set is a deterministic function of cfg.Seed (drawn
// from an O(1)-seed SplitMix64 stream), so repeated explanations of the
// same input agree bitwise.
func (e *Explainer) sampled(ctx context.Context, x, bg []float64, active []int, out *Explanation) error {
	m := len(active)
	words := (m + 63) / 64
	budget := e.cfg.NSamples
	rng := rand.New(&splitmix64{s: uint64(e.cfg.Seed)})

	sc := e.sc
	sc.masks = sc.masks[:0]
	sc.weights = sc.weights[:0]
	nCoal := 0
	// addCoalition appends one zeroed bitset + weight and returns the mask
	// words for the caller to fill.
	addCoalition := func(weight float64) []uint64 {
		for i := 0; i < words; i++ {
			sc.masks = append(sc.masks, 0)
		}
		sc.weights = append(sc.weights, weight)
		nCoal++
		return sc.masks[len(sc.masks)-words:]
	}
	maskOf := func(i int) []uint64 { return sc.masks[i*words : (i+1)*words] }
	getBit := func(mask []uint64, b int) bool { return mask[b>>6]>>(b&63)&1 == 1 }
	lastWord := ^uint64(0) // valid-bit mask of the slab's final word
	if m&63 != 0 {
		lastWord = 1<<(m&63) - 1
	}

	// Shapley kernel weight per size, paired (s and m-s together).
	sizeWeight := func(s int) float64 {
		return float64(m-1) / (float64(s) * float64(m-s))
	}
	maxPair := m / 2 // pairs (1, m-1), (2, m-2), ...

	remainingWeight := 0.0
	for s := 1; s <= maxPair; s++ {
		w := sizeWeight(s)
		if s != m-s {
			w *= 2
		}
		remainingWeight += w
	}

	used := 0
	lastComplete := 0 // sizes 1..lastComplete fully enumerated
	for s := 1; s <= maxPair; s++ {
		cnt := binom(m, s)
		total := cnt
		if s != m-s {
			total *= 2
		}
		if float64(budget-used) < total {
			break
		}
		// Enumerate all subsets of size s (and complements): each subset of
		// a complete size level shares the level's kernel weight equally.
		w := sizeWeight(s)
		if s != m-s {
			w *= 2
		}
		per := w / total
		forEachSubset(m, s, func(idx []int) {
			mask := addCoalition(per)
			for _, i := range idx {
				mask[i>>6] |= 1 << (i & 63)
			}
			if s != m-s {
				comp := addCoalition(per)
				mask = maskOf(nCoal - 2) // addCoalition may have regrown the slab
				for wi := range comp {
					comp[wi] = ^mask[wi]
				}
				comp[words-1] &= lastWord
			}
		})
		used += int(total)
		remainingWeight -= w
		lastComplete = s
	}

	// Random sampling for the remaining budget across incomplete sizes.
	if remainingWeight > 1e-12 {
		var sizes []int
		var cumw []float64
		tot := 0.0
		for s := lastComplete + 1; s <= maxPair; s++ {
			w := sizeWeight(s)
			if s != m-s {
				w *= 2
			}
			tot += w
			sizes = append(sizes, s)
			cumw = append(cumw, tot)
		}
		nRand := budget - used
		if nRand > 0 && len(sizes) > 0 {
			per := remainingWeight / float64(nRand) // equal weight per sample
			if cap(sc.perm) < m {
				sc.perm = make([]int, m)
			}
			perm := sc.perm[:m]
			for i := range perm {
				perm[i] = i
			}
			for k := 0; k < nRand; k++ {
				r := rng.Float64() * tot
				si := 0
				for si < len(cumw)-1 && r > cumw[si] {
					si++
				}
				s := sizes[si]
				kk := s // sizes only go up to m/2, so kk is the smaller of the pair
				if s != m-s && rng.Intn(2) == 1 {
					s = m - s
				}
				// Partial Fisher–Yates: only the first kk slots need to be
				// drawn for a uniform kk-subset, and the unchosen suffix is
				// then itself a uniform (m-kk)-subset for the complement
				// size — far cheaper than shuffling all m entries.
				for i := 0; i < kk; i++ {
					j := i + rng.Intn(m-i)
					perm[i], perm[j] = perm[j], perm[i]
				}
				chosen := perm[:kk]
				if s != kk {
					chosen = perm[kk:]
				}
				mask := addCoalition(per)
				for _, i := range chosen {
					mask[i>>6] |= 1 << (i & 63)
				}
			}
		}
	}

	// Evaluate f on every coalition (matrix backing reused).
	sc.inputs = growF(sc.inputs, nCoal*len(x))
	inputs := &linalg.Matrix{Rows: nCoal, Cols: len(x), Data: sc.inputs}
	for i := 0; i < nCoal; i++ {
		row := inputs.Row(i)
		copy(row, bg)
		for wi, v := range maskOf(i) {
			for ; v != 0; v &= v - 1 {
				j := active[wi<<6+bits.TrailingZeros64(v)]
				row[j] = x[j]
			}
		}
	}
	vals, err := EvalChunked(ctx, e.f, inputs)
	if err != nil {
		return err
	}

	// Constrained WLS: eliminate the last active feature with the
	// efficiency constraint Σ phi = fx - base.
	delta := out.FX - out.Base
	zCols := m - 1
	sc.z = growF(sc.z, nCoal*zCols)
	zm := &linalg.Matrix{Rows: nCoal, Cols: zCols, Data: sc.z}
	yv := growF(sc.y, nCoal)
	wv := growF(sc.w, nCoal)
	sc.y, sc.w = yv, wv
	for i := 0; i < nCoal; i++ {
		mask := maskOf(i)
		last := 0.0
		if getBit(mask, m-1) {
			last = 1
		}
		// Fill the row with the off-coalition value (0 or -1), then flip
		// just the set bits — the design matrix is sparse in whichever
		// value the coalition's minority is, and iterating mask words
		// beats a per-column branch.
		row := zm.Row(i)
		if last == 0 {
			for b := range row {
				row[b] = 0
			}
		} else {
			for b := range row {
				row[b] = -1
			}
		}
		on := 1.0 - last
		for wi, v := range mask {
			for ; v != 0; v &= v - 1 {
				b := wi<<6 + bits.TrailingZeros64(v)
				if b < zCols {
					row[b] = on
				}
			}
		}
		yv[i] = vals[i] - out.Base - last*delta
		wv[i] = sc.weights[i]
	}
	beta, err := linalg.WeightedRidge(zm, yv, wv, e.cfg.Ridge, false)
	if err != nil {
		// Degenerate sampling: fall back to spreading delta uniformly.
		for _, j := range active {
			out.Phi[j] = delta / float64(m)
		}
		return nil
	}
	sum := 0.0
	for b := 0; b < zCols; b++ {
		out.Phi[active[b]] = beta[b]
		sum += beta[b]
	}
	out.Phi[active[m-1]] = delta - sum
	return nil
}

// forEachSubset enumerates all k-subsets of {0..n-1} in lexicographic order.
func forEachSubset(n, k int, fn func(idx []int)) {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		fn(idx)
		// Advance.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
