package shap

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{
		"":       ModeAuto,
		"auto":   ModeAuto,
		"kernel": ModeKernel,
		"tree":   ModeTree,
	} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMode("fourier"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
}

func TestForModelDispatch(t *testing.T) {
	m, _ := trainSmallGBDT(t, 300, 5, 8, 9)
	cfg := DefaultConfig()

	// Tree model: auto and tree pick the exact tree path, kernel the
	// model-agnostic one.
	for mode, wantTree := range map[Mode]bool{ModeAuto: true, ModeTree: true, ModeKernel: false, "": true} {
		att, err := ForModel(m.PredictBatch, m, nil, mode, cfg)
		if err != nil {
			t.Fatalf("mode %q: %v", mode, err)
		}
		_, isTree := att.(*TreeExplainer)
		if isTree != wantTree {
			t.Errorf("mode %q on tree model: tree path %v, want %v", mode, isTree, wantTree)
		}
	}

	// Neural (no tree structure): auto falls back to kernel, tree errors.
	f := linearF(1, []float64{1, 2, 3, 4, 5})
	att, err := ForModel(f, nil, nil, ModeAuto, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, isKernel := att.(*Explainer); !isKernel {
		t.Error("auto on a non-tree model must pick the kernel explainer")
	}
	if _, err := ForModel(f, nil, nil, ModeTree, cfg); err == nil {
		t.Error("tree mode on a non-tree model must error")
	}
	if _, err := ForModel(f, nil, nil, "fourier", cfg); err == nil {
		t.Error("unknown mode must error")
	}
}

// TestAttributeAgreesWithExplain: the Attributor face returns exactly what
// the estimators' native entry points return.
func TestAttributeAgreesWithExplain(t *testing.T) {
	m, x := trainSmallGBDT(t, 300, 6, 10, 10)
	row := x.Row(3)
	ctx := context.Background()

	tree := NewTree(m)
	at, err := tree.Attribute(ctx, row)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewTree(m).Explain(row, nil)
	for j := range at.Phi {
		if at.Phi[j] != ex.Phi[j] {
			t.Fatalf("tree Attribute phi[%d] %v != Explain %v", j, at.Phi[j], ex.Phi[j])
		}
	}

	kernel := New(m.PredictBatch, nil, DefaultConfig())
	ak, err := kernel.Attribute(ctx, row)
	if err != nil {
		t.Fatal(err)
	}
	ek := New(m.PredictBatch, nil, DefaultConfig()).Explain(row)
	for j := range ak.Phi {
		if ak.Phi[j] != ek.Phi[j] {
			t.Fatalf("kernel Attribute phi[%d] %v != Explain %v", j, ak.Phi[j], ek.Phi[j])
		}
	}

	// Cancellation short-circuits both.
	done, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tree.Attribute(done, row); err == nil {
		t.Error("tree Attribute ignored a cancelled context")
	}
	if _, err := kernel.Attribute(done, row); err == nil {
		t.Error("kernel Attribute ignored a cancelled context")
	}
}

// TestTreeSHAPParityAt45Counters is the satellite parity check at AIIO's
// schema width: a 45-feature model, inputs with at most MaxExact active
// features, TreeSHAP vs the exact Kernel enumerator within 1e-9, and the
// zero-background robustness property on both.
func TestTreeSHAPParityAt45Counters(t *testing.T) {
	const d = 45
	m, _ := trainSmallGBDT(t, 800, d, 20, 11)
	cfg := DefaultConfig()
	tree := NewTree(m)
	kernel := New(m.PredictBatch, nil, cfg)

	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 8; trial++ {
		// A sparse input: exactly MaxExact (or fewer) active features.
		x := make([]float64, d)
		for k := 0; k < cfg.MaxExact; k++ {
			x[rng.Intn(d)] = rng.Float64() * 10
		}
		a := tree.Explain(x, nil)
		b := kernel.Explain(x)
		if !b.Exact {
			t.Fatalf("trial %d: kernel path not exact", trial)
		}
		for j := range a.Phi {
			if diff := math.Abs(a.Phi[j] - b.Phi[j]); diff > 1e-9 {
				t.Fatalf("trial %d phi[%d]: tree %v vs kernel %v", trial, j, a.Phi[j], b.Phi[j])
			}
			if x[j] == 0 && (a.Phi[j] != 0 || b.Phi[j] != 0) {
				t.Fatalf("trial %d: zero feature %d attributed (tree %v, kernel %v)",
					trial, j, a.Phi[j], b.Phi[j])
			}
		}
		if a.AdditivityError() > 1e-9 || b.AdditivityError() > 1e-9 {
			t.Fatalf("trial %d: additivity %v / %v", trial, a.AdditivityError(), b.AdditivityError())
		}
	}
}

// TestScratchReuseAllocationLean pins the allocation budget of the reused
// scratch buffers: after warm-up, a sampled-path Explain allocates only the
// Phi slice, the model's output batches and the WLS solve — not the
// per-coalition masks and matrices it used to.
func TestScratchReuseAllocationLean(t *testing.T) {
	m := 30
	w := make([]float64, m)
	x := make([]float64, m)
	for j := range w {
		w[j] = float64(j%5) - 2
		x[j] = float64(j + 1)
	}
	cfg := DefaultConfig()
	cfg.MaxExact = 2
	cfg.NSamples = 512
	e := New(linearF(1, w), nil, cfg)
	e.Explain(x) // warm the scratch
	allocs := testing.AllocsPerRun(5, func() { e.Explain(x) })
	// The old []bool implementation allocated one mask per coalition
	// (>500 here); the slab version stays in the dozens.
	if allocs > 100 {
		t.Errorf("sampled Explain makes %v allocs/op after warm-up, want <= 100", allocs)
	}

	tm, xm := trainSmallGBDT(t, 400, 12, 20, 13)
	te := NewTree(tm)
	row := xm.Row(0)
	te.Explain(row, nil)
	allocs = testing.AllocsPerRun(5, func() { te.Explain(row, nil) })
	// Phi + the zero background; the fold state is reused.
	if allocs > 4 {
		t.Errorf("TreeSHAP Explain makes %v allocs/op after warm-up, want <= 4", allocs)
	}
}

// TestExplainerConcurrentUse: the scratch is mutex-guarded, so one explainer
// shared by goroutines stays correct (run under -race in CI).
func TestExplainerConcurrentUse(t *testing.T) {
	m, xm := trainSmallGBDT(t, 300, 8, 10, 14)
	e := New(m.PredictBatch, nil, DefaultConfig())
	te := NewTree(m)
	row := xm.Row(0)
	want := e.Explain(row)
	wantTree := te.Explain(row, nil)

	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 10; i++ {
				got := e.Explain(row)
				for j := range got.Phi {
					if got.Phi[j] != want.Phi[j] {
						done <- fmt.Errorf("kernel phi[%d] drifted under concurrency", j)
						return
					}
				}
				gt := te.Explain(row, nil)
				for j := range gt.Phi {
					if gt.Phi[j] != wantTree.Phi[j] {
						done <- fmt.Errorf("tree phi[%d] drifted under concurrency", j)
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
