// Package tune implements the paper's third future-work direction
// (Section 5 and the limitations of Section 1): automatically mapping
// diagnosis results to performance-tuning techniques. The paper removed
// diagnosed bottlenecks by hand; this advisor closes the loop:
//
//  1. take AIIO's merged diagnosis of a job;
//  2. for each flagged bottleneck family, build the *counterfactual*
//     counter vector the corresponding tuning would produce (e.g. merging
//     small writes moves the size histogram up and shrinks the op count);
//  3. predict the counterfactual performance with the same performance
//     functions (accuracy-weighted, Eq. 8) and report the expected gain.
//
// The advisor therefore never invents numbers: every recommendation's
// predicted speedup comes from the trained models evaluated on the modified
// counters — the "change the inputs, the performance function changes its
// output" use the paper describes in Section 3.2.
package tune

import (
	"fmt"
	"math"
	"sort"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
)

// Recommendation is one tuning action with its model-predicted effect.
type Recommendation struct {
	// Action is the short identifier ("increase-transfer-size", ...).
	Action string
	// Description explains the change in the application's terms.
	Description string
	// Counters are the diagnosis counters that motivated the action.
	Counters []darshan.CounterID
	// PredictedMiBps is the accuracy-weighted predicted performance after
	// the change; PredictedGain is its ratio to the current prediction.
	PredictedMiBps float64
	PredictedGain  float64
}

// Advisor turns diagnoses into ranked recommendations.
type Advisor struct {
	ens *core.Ensemble
}

// New creates an advisor over a trained ensemble.
func New(ens *core.Ensemble) *Advisor {
	return &Advisor{ens: ens}
}

// transform is one counterfactual rewrite of a job record.
type transform struct {
	action      string
	description string
	counters    []darshan.CounterID
	// applies reports whether the transform targets one of the diagnosed
	// bottleneck counters.
	applies func(neg map[darshan.CounterID]bool, rec *darshan.Record) bool
	// rewrite builds the counterfactual record.
	rewrite func(rec *darshan.Record) *darshan.Record
}

// Advise ranks the applicable tunings for a diagnosed job by predicted
// gain, best first. Only recommendations with predicted gain above minGain
// (e.g. 1.05) are returned.
func (a *Advisor) Advise(diag *core.Diagnosis, minGain float64) ([]Recommendation, error) {
	if diag == nil || diag.Record == nil {
		return nil, fmt.Errorf("tune: nil diagnosis")
	}
	neg := map[darshan.CounterID]bool{}
	for _, f := range diag.Bottlenecks() {
		neg[f.Counter] = true
	}
	baseline := a.predict(diag.Record)

	var out []Recommendation
	for _, tr := range catalog() {
		if !tr.applies(neg, diag.Record) {
			continue
		}
		cf := tr.rewrite(diag.Record)
		if err := cf.Validate(); err != nil {
			return nil, fmt.Errorf("tune: transform %s produced an invalid record: %w", tr.action, err)
		}
		pred := a.predict(cf)
		gain := 1.0
		if baseline > 0 {
			gain = pred / baseline
		}
		if gain < minGain {
			continue
		}
		out = append(out, Recommendation{
			Action:         tr.action,
			Description:    tr.description,
			Counters:       tr.counters,
			PredictedMiBps: pred,
			PredictedGain:  gain,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PredictedGain > out[j].PredictedGain })
	return out, nil
}

// predict is the accuracy-agnostic ensemble prediction in MiB/s: the plain
// mean across models (no measured performance exists for a counterfactual,
// so Eq. 8 weights cannot be formed).
func (a *Advisor) predict(rec *darshan.Record) float64 {
	x := features.TransformRecord(rec)
	s := 0.0
	for _, m := range a.ens.Models {
		s += m.Predict(x)
	}
	return features.Inverse(s / float64(len(a.ens.Models)))
}

// catalog is the built-in tuning catalogue; each entry mirrors one of the
// paper's manual optimizations.
func catalog() []transform {
	return []transform{
		{
			action:      "increase-transfer-size",
			description: "merge small writes into ~1 MiB transfers (the paper's Fig. 7 fix: larger -t, buffering, or collective I/O)",
			counters: []darshan.CounterID{
				darshan.PosixSizeWrite0_100, darshan.PosixSizeWrite100_1K,
				darshan.PosixSizeWrite1K_10K, darshan.PosixWrites,
			},
			applies: func(neg map[darshan.CounterID]bool, rec *darshan.Record) bool {
				diagnosed := neg[darshan.PosixSizeWrite0_100] || neg[darshan.PosixSizeWrite100_1K] ||
					neg[darshan.PosixSizeWrite1K_10K] || neg[darshan.PosixWrites] ||
					neg[darshan.PosixAccess1Count]
				f := smallWriteFraction(rec)
				// Diagnosed small-write impact, or an overwhelmingly
				// small-write workload regardless of which correlated
				// counter absorbed the attribution; the predicted-gain gate
				// does the final filtering.
				return (diagnosed && f > 0.5) || f > 0.9
			},
			rewrite: mergeSmallWrites,
		},
		{
			action:      "increase-read-size",
			description: "read in ~1 MiB requests instead of small ones (Fig. 8b)",
			counters: []darshan.CounterID{
				darshan.PosixSizeRead0_100, darshan.PosixSizeRead100_1K,
				darshan.PosixSizeRead1K_10K, darshan.PosixReads,
			},
			applies: func(neg map[darshan.CounterID]bool, rec *darshan.Record) bool {
				diagnosed := neg[darshan.PosixSizeRead0_100] || neg[darshan.PosixSizeRead100_1K] ||
					neg[darshan.PosixSizeRead1K_10K] || neg[darshan.PosixReads] ||
					neg[darshan.PosixAccess1Count]
				f := smallReadFraction(rec)
				return (diagnosed && f > 0.5) || f > 0.9
			},
			rewrite: mergeSmallReads,
		},
		{
			action:      "remove-redundant-seeks",
			description: "drop per-access lseek calls for sequential access (the paper's IOR fix, Fig. 8)",
			counters:    []darshan.CounterID{darshan.PosixSeeks},
			applies: func(neg map[darshan.CounterID]bool, rec *darshan.Record) bool {
				ops := rec.Counter(darshan.PosixReads) + rec.Counter(darshan.PosixWrites)
				return neg[darshan.PosixSeeks] && ops > 0 &&
					rec.Counter(darshan.PosixSeeks) > 0.5*ops
			},
			rewrite: func(rec *darshan.Record) *darshan.Record {
				cf := *rec
				cf.SetCounter(darshan.PosixSeeks, rec.Counter(darshan.NProcs))
				return &cf
			},
		},
		{
			action:      "sequentialize-access",
			description: "convert strided/random offsets into contiguous access (Figs. 9-12)",
			counters: []darshan.CounterID{
				darshan.PosixStride1Count, darshan.PosixStride2Count,
				darshan.PosixStride3Count, darshan.PosixStride4Count,
				darshan.PosixFileNotAligned,
			},
			applies: func(neg map[darshan.CounterID]bool, rec *darshan.Record) bool {
				strided := neg[darshan.PosixStride1Count] || neg[darshan.PosixStride2Count] ||
					neg[darshan.PosixStride3Count] || neg[darshan.PosixStride4Count] ||
					neg[darshan.PosixFileNotAligned]
				return strided && rec.Counter(darshan.PosixStride1Count) > 0
			},
			rewrite: sequentialize,
		},
		{
			action:      "merge-files",
			description: "merge many small input files into one (the paper's DASSA fix, Fig. 15)",
			counters:    []darshan.CounterID{darshan.PosixOpens, darshan.PosixStats},
			applies: func(neg map[darshan.CounterID]bool, rec *darshan.Record) bool {
				opens := rec.Counter(darshan.PosixOpens)
				nprocs := rec.Counter(darshan.NProcs)
				// Fire on diagnosed metadata impact, or on an extreme
				// structural signal (dozens of files per rank) even when
				// correlated counters absorbed the attribution.
				diagnosed := neg[darshan.PosixOpens] || neg[darshan.PosixStats]
				return (diagnosed && opens > 2*nprocs) || opens > 8*nprocs
			},
			rewrite: func(rec *darshan.Record) *darshan.Record {
				cf := *rec
				n := rec.Counter(darshan.NProcs)
				cf.SetCounter(darshan.PosixOpens, 2*n) // data file + aux per rank
				if cf.Counter(darshan.PosixStats) > n {
					cf.SetCounter(darshan.PosixStats, n)
				}
				return &cf
			},
		},
		{
			action:      "widen-striping",
			description: "stripe the file over more OSTs and use >= 4 MiB stripes (the paper's OpenPMD fix, Fig. 14)",
			counters:    []darshan.CounterID{darshan.LustreStripeSize, darshan.LustreStripeWidth},
			applies: func(neg map[darshan.CounterID]bool, rec *darshan.Record) bool {
				return (neg[darshan.LustreStripeSize] || neg[darshan.LustreStripeWidth]) &&
					rec.Counter(darshan.LustreStripeWidth) < 8
			},
			rewrite: func(rec *darshan.Record) *darshan.Record {
				cf := *rec
				cf.SetCounter(darshan.LustreStripeWidth, 8)
				if cf.Counter(darshan.LustreStripeSize) < 4*(1<<20) {
					cf.SetCounter(darshan.LustreStripeSize, 4*(1<<20))
				}
				return &cf
			},
		},
	}
}

func smallWriteFraction(rec *darshan.Record) float64 {
	w := rec.Counter(darshan.PosixWrites)
	if w == 0 {
		return 0
	}
	small := rec.Counter(darshan.PosixSizeWrite0_100) +
		rec.Counter(darshan.PosixSizeWrite100_1K) +
		rec.Counter(darshan.PosixSizeWrite1K_10K)
	return small / w
}

func smallReadFraction(rec *darshan.Record) float64 {
	r := rec.Counter(darshan.PosixReads)
	if r == 0 {
		return 0
	}
	small := rec.Counter(darshan.PosixSizeRead0_100) +
		rec.Counter(darshan.PosixSizeRead100_1K) +
		rec.Counter(darshan.PosixSizeRead1K_10K)
	return small / r
}

// mergeSmallWrites rewrites the counters as if the same bytes were written
// in ~1 MiB requests: the op count shrinks to ceil(bytes/1MiB) per rank
// pattern, the size histogram concentrates in the top bucket, and
// sequential/consecutive counts follow the new op count.
func mergeSmallWrites(rec *darshan.Record) *darshan.Record {
	cf := *rec
	bytes := rec.Counter(darshan.PosixBytesWritten)
	nprocs := math.Max(rec.Counter(darshan.NProcs), 1)
	newWrites := math.Max(math.Ceil(bytes/float64(1<<20)), nprocs)
	cf.SetCounter(darshan.PosixWrites, newWrites)
	cf.SetCounter(darshan.PosixSizeWrite0_100, 0)
	cf.SetCounter(darshan.PosixSizeWrite100_1K, 0)
	cf.SetCounter(darshan.PosixSizeWrite1K_10K, 0)
	cf.SetCounter(darshan.PosixSizeWrite10K_100K, 0)
	cf.SetCounter(darshan.PosixSizeWrite100K_1M, newWrites)
	seq := math.Max(newWrites-nprocs, 0)
	cf.SetCounter(darshan.PosixSeqWrites, seq)
	cf.SetCounter(darshan.PosixConsecWrites, seq)
	rewriteAccessCounters(&cf, newWrites+rec.Counter(darshan.PosixReads), 1<<20)
	clearStrides(&cf)
	cf.SetCounter(darshan.PosixFileNotAligned, 0)
	if cf.Counter(darshan.PosixSeeks) > nprocs {
		cf.SetCounter(darshan.PosixSeeks, nprocs)
	}
	return &cf
}

// mergeSmallReads is the read-side counterpart.
func mergeSmallReads(rec *darshan.Record) *darshan.Record {
	cf := *rec
	bytes := rec.Counter(darshan.PosixBytesRead)
	nprocs := math.Max(rec.Counter(darshan.NProcs), 1)
	newReads := math.Max(math.Ceil(bytes/float64(1<<20)), nprocs)
	cf.SetCounter(darshan.PosixReads, newReads)
	cf.SetCounter(darshan.PosixSizeRead0_100, 0)
	cf.SetCounter(darshan.PosixSizeRead100_1K, 0)
	cf.SetCounter(darshan.PosixSizeRead1K_10K, 0)
	cf.SetCounter(darshan.PosixSizeRead10K_100K, 0)
	cf.SetCounter(darshan.PosixSizeRead100K_1M, newReads)
	seq := math.Max(newReads-nprocs, 0)
	cf.SetCounter(darshan.PosixSeqReads, seq)
	cf.SetCounter(darshan.PosixConsecReads, seq)
	rewriteAccessCounters(&cf, newReads+rec.Counter(darshan.PosixWrites), 1<<20)
	clearStrides(&cf)
	cf.SetCounter(darshan.PosixFileNotAligned, 0)
	if cf.Counter(darshan.PosixSeeks) > nprocs {
		cf.SetCounter(darshan.PosixSeeks, nprocs)
	}
	return &cf
}

// sequentialize keeps sizes but removes the stride/alignment signature.
func sequentialize(rec *darshan.Record) *darshan.Record {
	cf := *rec
	clearStrides(&cf)
	cf.SetCounter(darshan.PosixFileNotAligned, 0)
	nprocs := math.Max(rec.Counter(darshan.NProcs), 1)
	writes := cf.Counter(darshan.PosixWrites)
	reads := cf.Counter(darshan.PosixReads)
	if writes > 0 {
		cf.SetCounter(darshan.PosixSeqWrites, math.Max(writes-nprocs, 0))
		cf.SetCounter(darshan.PosixConsecWrites, math.Max(writes-nprocs, 0))
	}
	if reads > 0 {
		cf.SetCounter(darshan.PosixSeqReads, math.Max(reads-nprocs, 0))
		cf.SetCounter(darshan.PosixConsecReads, math.Max(reads-nprocs, 0))
	}
	if cf.Counter(darshan.PosixSeeks) > nprocs {
		cf.SetCounter(darshan.PosixSeeks, nprocs)
	}
	return &cf
}

func clearStrides(rec *darshan.Record) {
	for c := darshan.PosixStride1Stride; c <= darshan.PosixStride4Stride; c++ {
		rec.SetCounter(c, 0)
	}
	for c := darshan.PosixStride1Count; c <= darshan.PosixStride4Count; c++ {
		rec.SetCounter(c, 0)
	}
}

// rewriteAccessCounters makes the top access size the new dominant one.
func rewriteAccessCounters(rec *darshan.Record, count float64, size float64) {
	rec.SetCounter(darshan.PosixAccess1Access, size)
	rec.SetCounter(darshan.PosixAccess1Count, count)
	for c := darshan.PosixAccess2Access; c <= darshan.PosixAccess4Access; c++ {
		rec.SetCounter(c, 0)
	}
	for c := darshan.PosixAccess2Count; c <= darshan.PosixAccess4Count; c++ {
		rec.SetCounter(c, 0)
	}
}
