package tune

import (
	"sync"
	"testing"

	"github.com/hpc-repro/aiio/internal/core"
	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/iosim"
	"github.com/hpc-repro/aiio/internal/logdb"
	"github.com/hpc-repro/aiio/internal/workload"
)

var (
	once sync.Once
	ens  *core.Ensemble
	tErr error
)

func ensemble(t *testing.T) *core.Ensemble {
	t.Helper()
	once.Do(func() {
		ds := logdb.Generate(logdb.GenConfig{Jobs: 900, Seed: 41})
		opts := core.DefaultTrainOptions()
		opts.Fast = true
		ens, _, tErr = core.TrainEnsemble(features.Build(ds), opts)
	})
	if tErr != nil {
		t.Fatalf("train: %v", tErr)
	}
	return ens
}

func diagOpts() core.DiagnoseOptions {
	o := core.DefaultDiagnoseOptions()
	o.SHAP.MaxExact = 10
	o.SHAP.NSamples = 1024
	return o
}

func runPattern(t *testing.T, id int) *darshan.Record {
	t.Helper()
	p := iosim.DefaultParams()
	p.NoiseSigma = 0
	cfg := workload.Patterns()[id-1].Config.Scale(16, 4)
	rec, _ := cfg.Run("ior", int64(id), int64(id), p)
	return rec
}

func adviseOn(t *testing.T, rec *darshan.Record) []Recommendation {
	t.Helper()
	e := ensemble(t)
	diag, err := e.Diagnose(rec, diagOpts())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := New(e).Advise(diag, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func hasAction(recs []Recommendation, action string) bool {
	for _, r := range recs {
		if r.Action == action {
			return true
		}
	}
	return false
}

func TestAdvisorRecommendsLargerWrites(t *testing.T) {
	recs := adviseOn(t, runPattern(t, 1)) // small synced writes
	if len(recs) == 0 {
		t.Fatal("no recommendations for the canonical slow job")
	}
	if !hasAction(recs, "increase-transfer-size") {
		names := make([]string, len(recs))
		for i, r := range recs {
			names[i] = r.Action
		}
		t.Fatalf("increase-transfer-size not recommended; got %v", names)
	}
	for _, r := range recs {
		if r.Action != "increase-transfer-size" {
			continue
		}
		// The paper's fix gives ~100x; the model-predicted gain must at
		// least be a large factor.
		if r.PredictedGain < 5 {
			t.Errorf("predicted gain %.2fx for larger writes; expected substantial", r.PredictedGain)
		}
	}
	// Recommendations are sorted best-first.
	for i := 1; i < len(recs); i++ {
		if recs[i].PredictedGain > recs[i-1].PredictedGain {
			t.Fatal("recommendations not sorted by gain")
		}
	}
}

func TestAdvisorRecommendsSeekRemoval(t *testing.T) {
	recs := adviseOn(t, runPattern(t, 2)) // seek-per-read
	if !hasAction(recs, "remove-redundant-seeks") && !hasAction(recs, "increase-read-size") {
		names := make([]string, len(recs))
		for i, r := range recs {
			names[i] = r.Action
		}
		t.Errorf("no seek/read-size advice for the Fig. 8 job; got %v", names)
	}
}

func TestAdvisorRecommendsFileMerging(t *testing.T) {
	// DASSA-like record: many opens per rank.
	p := iosim.DefaultParams()
	p.NoiseSigma = 0
	cfg := appsDassa()
	rec, _ := iosim.Run(cfg, p)
	recs := adviseOn(t, rec)
	if !hasAction(recs, "merge-files") {
		names := make([]string, len(recs))
		for i, r := range recs {
			names[i] = r.Action
		}
		t.Errorf("merge-files not recommended for a many-files job; got %v", names)
	}
}

// appsDassa builds a many-small-files read job without importing
// internal/apps (keeps this package's dependencies minimal).
func appsDassa() iosim.Job {
	return iosim.Job{
		Name: "many-files", NProcs: 8, FS: iosim.DefaultFS(), Seed: 3,
		Gen: func(rank int, emit func(darshan.Op)) {
			// Metadata-dominated: 96 tiny files per rank, one small read each.
			for f := int32(0); f < 96; f++ {
				emit(darshan.Op{Kind: darshan.OpOpen, File: f})
				emit(darshan.Op{Kind: darshan.OpStat, File: f})
				emit(darshan.Op{Kind: darshan.OpRead, File: f, Offset: 0, Size: 32 * 1024})
				emit(darshan.Op{Kind: darshan.OpClose, File: f})
			}
		},
	}
}

func TestCounterfactualsAreValidRecords(t *testing.T) {
	rec := runPattern(t, 5) // random writes: several transforms apply
	for _, tr := range catalog() {
		cf := tr.rewrite(rec)
		if err := cf.Validate(); err != nil {
			t.Errorf("transform %s produced invalid record: %v", tr.action, err)
		}
		if cf == rec {
			t.Errorf("transform %s returned the original record", tr.action)
		}
	}
	// The original record must not be mutated by any transform.
	again := runPattern(t, 5)
	if *rec != *again {
		t.Fatal("transforms mutated the input record")
	}
}

func TestAdvisorOnCleanJobIsQuiet(t *testing.T) {
	// A large sequential well-striped write should attract little advice.
	p := iosim.DefaultParams()
	p.NoiseSigma = 0
	cfg := workload.DefaultIOR()
	cfg.Write = true
	cfg.TransferSize = 1 << 20
	cfg.BlockSize = 16 << 20
	cfg.NProcs = 8
	cfg.FS = iosim.FSConfig{StripeSize: 4 << 20, StripeWidth: 8}
	rec, _ := cfg.Run("ior", 9, 9, p)
	recs := adviseOn(t, rec)
	if hasAction(recs, "increase-transfer-size") || hasAction(recs, "merge-files") {
		t.Errorf("spurious advice for a clean job: %+v", recs)
	}
}

func TestAdviseErrors(t *testing.T) {
	if _, err := New(ensemble(t)).Advise(nil, 1.0); err == nil {
		t.Error("nil diagnosis accepted")
	}
}
