package mpiio

import (
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// capture collects lowered POSIX ops.
type capture struct {
	ops []darshan.Op
}

func (c *capture) emit(op darshan.Op) { c.ops = append(c.ops, op) }

func (c *capture) bytesWritten() int64 {
	var n int64
	for _, op := range c.ops {
		if op.Kind == darshan.OpWrite {
			n += op.Size
		}
	}
	return n
}

func (c *capture) writtenRanges() map[int64]int64 {
	m := map[int64]int64{}
	for _, op := range c.ops {
		if op.Kind == darshan.OpWrite {
			m[op.Offset] += op.Size
		}
	}
	return m
}

func TestCounterNames(t *testing.T) {
	names := CounterNames()
	if len(names) != int(NumCounters) {
		t.Fatalf("%d names", len(names))
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" || seen[n] {
			t.Errorf("counter %d bad name %q", i, n)
		}
		seen[n] = true
	}
	if CollWrites.String() != "MPIIO_COLL_WRITES" {
		t.Errorf("CollWrites name %q", CollWrites)
	}
	if CounterID(99).String() == "" {
		t.Error("out-of-range should stringify")
	}
}

func TestIndependentOpsLowerDirectly(t *testing.T) {
	var c capture
	f := Open(0, 4, 7, 2, false, c.emit)
	f.WriteAt(0, 1024)
	f.WriteAt(1024, 1024) // contiguous: no seek
	f.ReadAt(4096, 512)
	f.Sync()
	f.Close()

	cnt := f.Counters()
	if cnt[IndepOpens] != 1 || cnt[CollOpens] != 0 {
		t.Errorf("opens: %v/%v", cnt[IndepOpens], cnt[CollOpens])
	}
	if cnt[IndepWrites] != 2 || cnt[IndepReads] != 1 {
		t.Errorf("ops: %v writes, %v reads", cnt[IndepWrites], cnt[IndepReads])
	}
	if cnt[BytesWritten] != 2048 || cnt[BytesRead] != 512 {
		t.Errorf("bytes: %v/%v", cnt[BytesWritten], cnt[BytesRead])
	}
	if cnt[RWSwitches] != 1 {
		t.Errorf("rw switches: %v", cnt[RWSwitches])
	}
	if cnt[SizeWrite100_1K] != 2 || cnt[SizeRead100_1K] != 1 {
		t.Errorf("size buckets wrong: %v", cnt)
	}
	if cnt[Syncs] != 1 {
		t.Errorf("syncs: %v", cnt[Syncs])
	}
	// Lowering: open, write, write (no seek between), seek, read, fsync, close.
	kinds := []darshan.OpKind{}
	for _, op := range c.ops {
		kinds = append(kinds, op.Kind)
	}
	want := []darshan.OpKind{darshan.OpOpen, darshan.OpWrite, darshan.OpWrite,
		darshan.OpSeek, darshan.OpRead, darshan.OpFsync, darshan.OpClose}
	if len(kinds) != len(want) {
		t.Fatalf("lowered ops %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("op %d = %v, want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
}

// runCollective drives all ranks and returns per-rank captures + merged
// counters.
func runCollective(nprocs, aggRatio int, drive func(f *File)) ([]capture, Counters) {
	caps := make([]capture, nprocs)
	var merged Counters
	for rank := 0; rank < nprocs; rank++ {
		f := Open(rank, nprocs, 1, aggRatio, true, caps[rank].emit)
		drive(f)
		f.Close()
		merged.Merge(f.Counters())
	}
	return caps, merged
}

func TestCollectiveWriteContigCoversExactly(t *testing.T) {
	const nprocs, aggRatio = 8, 4
	const perRank = 256 * 1024
	caps, merged := runCollective(nprocs, aggRatio, func(f *File) {
		f.CollectiveWriteContig(0, perRank, 1<<20)
	})
	// Every rank counts one collective write; only aggregators lower.
	if merged[CollWrites] != nprocs {
		t.Errorf("MPIIO_COLL_WRITES = %v", merged[CollWrites])
	}
	if merged[CollOpens] != nprocs {
		t.Errorf("MPIIO_COLL_OPENS = %v", merged[CollOpens])
	}
	if merged[BytesWritten] != nprocs*perRank {
		t.Errorf("MPIIO bytes %v", merged[BytesWritten])
	}
	var posixBytes int64
	covered := map[int64]int64{}
	for rank := range caps {
		wrote := caps[rank].bytesWritten()
		posixBytes += wrote
		if rank%aggRatio != 0 && wrote != 0 {
			t.Errorf("non-aggregator rank %d wrote %d POSIX bytes", rank, wrote)
		}
		for off, n := range caps[rank].writtenRanges() {
			covered[off] += n
		}
	}
	if posixBytes != nprocs*perRank {
		t.Errorf("POSIX bytes %d, want %d", posixBytes, nprocs*perRank)
	}
	// The union of aggregator writes must tile [0, total) without overlap.
	var sum int64
	for _, n := range covered {
		sum += n
	}
	if sum != nprocs*perRank {
		t.Errorf("covered %d bytes", sum)
	}
}

func TestCollectiveWriteInterleavedMergesAndCovers(t *testing.T) {
	const nprocs, aggRatio = 8, 4
	const piece = 512
	const count = 16
	caps, merged := runCollective(nprocs, aggRatio, func(f *File) {
		f.CollectiveWriteInterleaved(0, piece, count, 1<<20)
	})
	total := int64(nprocs * piece * count)
	if merged[BytesWritten] != float64(total) {
		t.Errorf("MPIIO bytes %v, want %d", merged[BytesWritten], total)
	}
	var posixBytes int64
	maxWrites := 0
	for rank := range caps {
		posixBytes += caps[rank].bytesWritten()
		w := 0
		for _, op := range caps[rank].ops {
			if op.Kind == darshan.OpWrite {
				w++
				if op.Size < piece {
					t.Errorf("rank %d emitted a write smaller than a piece: %d", rank, op.Size)
				}
			}
		}
		if w > maxWrites {
			maxWrites = w
		}
	}
	if posixBytes != total {
		t.Errorf("POSIX bytes %d, want %d", posixBytes, total)
	}
	// Two-phase merging: far fewer POSIX writes than the 16*8 pieces.
	if maxWrites > 4 {
		t.Errorf("aggregator issued %d writes; merging failed", maxWrites)
	}
}

func TestCollectiveReadContig(t *testing.T) {
	const nprocs, aggRatio = 4, 2
	const perRank = 128 * 1024
	caps, merged := runCollective(nprocs, aggRatio, func(f *File) {
		f.CollectiveReadContig(0, perRank, 1<<20)
	})
	if merged[CollReads] != nprocs {
		t.Errorf("MPIIO_COLL_READS = %v", merged[CollReads])
	}
	if merged[BytesRead] != nprocs*perRank {
		t.Errorf("MPIIO read bytes %v", merged[BytesRead])
	}
	var posixRead int64
	for rank := range caps {
		for _, op := range caps[rank].ops {
			if op.Kind == darshan.OpRead {
				posixRead += op.Size
			}
		}
	}
	if posixRead != nprocs*perRank {
		t.Errorf("POSIX read bytes %d", posixRead)
	}
}

func TestAggregatorGroupEdges(t *testing.T) {
	// nprocs not divisible by aggRatio: the last group is short but the
	// coverage must still be exact.
	const nprocs, aggRatio = 7, 3
	const perRank = 64 * 1024
	caps, _ := runCollective(nprocs, aggRatio, func(f *File) {
		f.CollectiveWriteContig(0, perRank, 1<<20)
	})
	var posixBytes int64
	for rank := range caps {
		posixBytes += caps[rank].bytesWritten()
	}
	if posixBytes != nprocs*perRank {
		t.Errorf("POSIX bytes %d, want %d", posixBytes, nprocs*perRank)
	}
}

func TestDegenerateInputs(t *testing.T) {
	var c capture
	f := Open(0, 0, 1, 0, false, c.emit) // clamps nprocs/aggRatio to 1
	f.CollectiveWriteContig(0, 0, 0)     // zero size: counted, not lowered
	f.CollectiveWriteInterleaved(0, 0, 0, 0)
	f.CollectiveReadContig(0, -5, 0)
	f.Close()
	if got := c.bytesWritten(); got != 0 {
		t.Errorf("degenerate collectives wrote %d bytes", got)
	}
	cnt := f.Counters()
	if cnt[CollWrites] != 2 || cnt[CollReads] != 1 {
		t.Errorf("degenerate ops still counted: %v/%v", cnt[CollWrites], cnt[CollReads])
	}
}

func TestSyncVisibleOnlyAtMPIIOLayer(t *testing.T) {
	// MPI_File_sync lowers to fsync, which none of the paper's 45 POSIX
	// counters records — but MPIIO_SYNCS does. This is the information gap
	// the extension experiment quantifies.
	run := func(sync bool) (*darshan.Record, Counters) {
		coll := darshan.NewCollector(1, 8, 1<<20)
		pc := coll.Proc(0)
		f := Open(0, 1, 0, 1, false, func(op darshan.Op) { pc.Observe(op) })
		for i := int64(0); i < 8; i++ {
			f.WriteAt(i*1024, 1024)
			if sync {
				f.Sync()
			}
		}
		f.Close()
		return coll.Finalize(1<<20, 1), *f.Counters()
	}
	recA, cntA := run(false)
	recB, cntB := run(true)
	if *recA != *recB {
		t.Error("fsync moved a POSIX counter; the 45-counter set should not see it")
	}
	if cntA[Syncs] != 0 || cntB[Syncs] != 8 {
		t.Errorf("MPIIO_SYNCS = %v/%v, want 0/8", cntA[Syncs], cntB[Syncs])
	}
}

func TestCollectivesEmitExchange(t *testing.T) {
	var c capture
	f := Open(0, 4, 1, 2, true, c.emit)
	f.CollectiveWriteContig(0, 1024, 1<<20)
	f.Close()
	found := false
	for _, op := range c.ops {
		if op.Kind == darshan.OpExchange && op.Size == 1024 {
			found = true
		}
	}
	if !found {
		t.Error("collective write emitted no exchange op")
	}
}

func TestCollectiveWriteNoncontigSieves(t *testing.T) {
	var c capture
	f := Open(0, 4, 1, 2, true, c.emit)
	pieces := []Piece{{0, 512}, {2048, 512}, {4096, 512}, {-1, 0}}
	f.CollectiveWriteNoncontig(pieces)
	f.Close()

	cnt := f.Counters()
	if cnt[CollWrites] != 1 {
		t.Errorf("MPIIO_COLL_WRITES = %v, want 1 (one collective call)", cnt[CollWrites])
	}
	if cnt[BytesWritten] != 1536 {
		t.Errorf("MPIIO bytes = %v", cnt[BytesWritten])
	}
	// The MPI-IO layer sees one medium request; POSIX sees 3 small synced
	// writes — the E2E disparity the paper diagnoses.
	if cnt[SizeWrite1K_10K] != 1 {
		t.Errorf("aggregate size bucket wrong: %v", cnt)
	}
	writes, fsyncs := 0, 0
	for _, op := range c.ops {
		switch op.Kind {
		case darshan.OpWrite:
			writes++
			if op.Size != 512 {
				t.Errorf("POSIX write size %d", op.Size)
			}
		case darshan.OpFsync:
			fsyncs++
		}
	}
	if writes != 3 || fsyncs != 3 {
		t.Errorf("sieved lowering: %d writes, %d fsyncs; want 3/3", writes, fsyncs)
	}
}
