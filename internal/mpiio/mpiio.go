// Package mpiio implements an MPI-IO-like middleware layer above the POSIX
// operation stream: independent and collective file operations that lower to
// POSIX ops (two-phase aggregation for collectives) while recording the
// MPI-IO-level counters of Darshan's MPIIO module.
//
// The paper's Section 1 limitation says AIIO "only considers POSIX-IO
// counters" and that "one may use I/O counters from MPI-IO and HDF5 in AI
// models; however, we did not attempt that". This package supplies the
// missing substrate: applications written against it produce both the POSIX
// record (through the usual collector/simulator pipeline) and the MPIIO
// counter vector, and the extended-features experiment measures what the
// upper-layer counters add. HDF5 parallel I/O maps onto MPI-IO, so the same
// counters stand in for the HDF5 layer.
package mpiio

import (
	"fmt"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// CounterID indexes the MPI-IO counter vector.
type CounterID int

// The MPIIO-module counters (a faithful subset of Darshan's MPIIO_* set).
const (
	IndepOpens CounterID = iota
	CollOpens
	IndepReads
	IndepWrites
	CollReads
	CollWrites
	Syncs
	BytesRead
	BytesWritten
	RWSwitches
	SizeWrite0_100
	SizeWrite100_1K
	SizeWrite1K_10K
	SizeWrite10K_100K
	SizeWrite100K_1M
	SizeRead0_100
	SizeRead100_1K
	SizeRead1K_10K
	SizeRead10K_100K
	SizeRead100K_1M

	NumCounters
)

var counterNames = [NumCounters]string{
	IndepOpens:        "MPIIO_INDEP_OPENS",
	CollOpens:         "MPIIO_COLL_OPENS",
	IndepReads:        "MPIIO_INDEP_READS",
	IndepWrites:       "MPIIO_INDEP_WRITES",
	CollReads:         "MPIIO_COLL_READS",
	CollWrites:        "MPIIO_COLL_WRITES",
	Syncs:             "MPIIO_SYNCS",
	BytesRead:         "MPIIO_BYTES_READ",
	BytesWritten:      "MPIIO_BYTES_WRITTEN",
	RWSwitches:        "MPIIO_RW_SWITCHES",
	SizeWrite0_100:    "MPIIO_SIZE_WRITE_AGG_0_100",
	SizeWrite100_1K:   "MPIIO_SIZE_WRITE_AGG_100_1K",
	SizeWrite1K_10K:   "MPIIO_SIZE_WRITE_AGG_1K_10K",
	SizeWrite10K_100K: "MPIIO_SIZE_WRITE_AGG_10K_100K",
	SizeWrite100K_1M:  "MPIIO_SIZE_WRITE_AGG_100K_1M",
	SizeRead0_100:     "MPIIO_SIZE_READ_AGG_0_100",
	SizeRead100_1K:    "MPIIO_SIZE_READ_AGG_100_1K",
	SizeRead1K_10K:    "MPIIO_SIZE_READ_AGG_1K_10K",
	SizeRead10K_100K:  "MPIIO_SIZE_READ_AGG_10K_100K",
	SizeRead100K_1M:   "MPIIO_SIZE_READ_AGG_100K_1M",
}

// String returns the Darshan MPIIO counter name.
func (id CounterID) String() string {
	if id < 0 || id >= NumCounters {
		return fmt.Sprintf("MPIIOCounter(%d)", int(id))
	}
	return counterNames[id]
}

// CounterNames returns the MPIIO counter names in canonical order.
func CounterNames() []string {
	out := make([]string, NumCounters)
	for i := range out {
		out[i] = counterNames[i]
	}
	return out
}

// Counters is one rank's MPIIO counter vector; Merge sums ranks like
// Darshan's shared-record reduction.
type Counters [NumCounters]float64

// Merge adds o into c.
func (c *Counters) Merge(o *Counters) {
	for i := range c {
		c[i] += o[i]
	}
}

func sizeBucket(size int64, base CounterID) CounterID {
	switch {
	case size <= 100:
		return base
	case size <= 1024:
		return base + 1
	case size <= 10*1024:
		return base + 2
	case size <= 100*1024:
		return base + 3
	default:
		return base + 4
	}
}

// File is one rank's handle on an MPI-IO file. It lowers operations to the
// POSIX stream via emit and records the rank's MPIIO counters. Like the
// other per-rank state in this repository, a File is driven from one
// goroutine.
type File struct {
	rank, nprocs int
	// aggRatio is ranks-per-aggregator for two-phase collectives
	// (ROMIO's cb_nodes knob expressed as a divisor).
	aggRatio int
	fileID   int32
	emit     func(darshan.Op)
	c        Counters
	lastKind darshan.OpKind
	touched  bool
	lastEnd  int64
}

// Open opens the file on this rank. collective marks MPI_File_open on the
// communicator (counted once per rank as Darshan does).
func Open(rank, nprocs int, fileID int32, aggRatio int, collective bool, emit func(darshan.Op)) *File {
	if aggRatio < 1 {
		aggRatio = 1
	}
	if nprocs < 1 {
		nprocs = 1
	}
	f := &File{rank: rank, nprocs: nprocs, aggRatio: aggRatio, fileID: fileID, emit: emit}
	if collective {
		f.c[CollOpens]++
	} else {
		f.c[IndepOpens]++
	}
	f.emit(darshan.Op{Kind: darshan.OpOpen, File: fileID})
	return f
}

// Counters returns the rank's MPIIO counters accumulated so far.
func (f *File) Counters() *Counters { return &f.c }

func (f *File) account(isWrite bool, size int64) {
	if f.touched && (f.lastKind == darshan.OpWrite) != isWrite {
		f.c[RWSwitches]++
	}
	if isWrite {
		f.c[BytesWritten] += float64(size)
		f.c[sizeBucket(size, SizeWrite0_100)]++
		f.lastKind = darshan.OpWrite
	} else {
		f.c[BytesRead] += float64(size)
		f.c[sizeBucket(size, SizeRead0_100)]++
		f.lastKind = darshan.OpRead
	}
	f.touched = true
}

// WriteAt is an independent write (MPI_File_write_at): it lowers to a
// seek+write by this rank.
func (f *File) WriteAt(off, size int64) {
	f.c[IndepWrites]++
	f.account(true, size)
	if off != f.lastEnd {
		f.emit(darshan.Op{Kind: darshan.OpSeek, File: f.fileID, Offset: off})
	}
	f.emit(darshan.Op{Kind: darshan.OpWrite, File: f.fileID, Offset: off, Size: size})
	f.lastEnd = off + size
}

// ReadAt is an independent read (MPI_File_read_at).
func (f *File) ReadAt(off, size int64) {
	f.c[IndepReads]++
	f.account(false, size)
	f.emit(darshan.Op{Kind: darshan.OpSeek, File: f.fileID, Offset: off})
	f.emit(darshan.Op{Kind: darshan.OpRead, File: f.fileID, Offset: off, Size: size})
	f.lastEnd = off + size
}

// Sync lowers MPI_File_sync to fsync.
func (f *File) Sync() {
	f.c[Syncs]++
	f.emit(darshan.Op{Kind: darshan.OpFsync, File: f.fileID})
}

// Close flushes and closes the rank's handle.
func (f *File) Close() {
	f.emit(darshan.Op{Kind: darshan.OpClose, File: f.fileID})
}

// isAggregator reports whether this rank writes in two-phase collectives.
func (f *File) isAggregator() bool { return f.rank%f.aggRatio == 0 }

// groupSpan returns this rank's aggregation group [first, first+len) ranks.
func (f *File) groupSpan() (first, n int) {
	first = (f.rank / f.aggRatio) * f.aggRatio
	n = f.aggRatio
	if first+n > f.nprocs {
		n = f.nprocs - first
	}
	return first, n
}

// CollectiveWriteContig is MPI_File_write_at_all for the common
// contiguous-by-rank decomposition: rank r contributes perRank bytes at
// base + r·perRank. Two-phase I/O makes each aggregator write its group's
// merged extent in chunk-sized POSIX writes; every rank still counts one
// collective write of its own perRank bytes, exactly as Darshan's MPIIO
// module sees it.
func (f *File) CollectiveWriteContig(base, perRank, chunk int64) {
	f.c[CollWrites]++
	f.account(true, perRank)
	f.exchange(perRank)
	if !f.isAggregator() || perRank <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 4 << 20
	}
	first, n := f.groupSpan()
	start := base + int64(first)*perRank
	total := int64(n) * perRank
	f.lowerMerged(start, total, chunk, true)
}

// CollectiveWriteInterleaved is MPI_File_write_at_all for a round-robin
// decomposition: piece i of rank r lives at base + (i·nprocs + r)·pieceSize,
// pieces per rank given by count. Two-phase I/O reorders the exchange so
// aggregators still write contiguous merged extents covering their group's
// interleaved pieces.
func (f *File) CollectiveWriteInterleaved(base, pieceSize int64, count int, chunk int64) {
	f.c[CollWrites]++
	f.account(true, pieceSize*int64(count))
	f.exchange(pieceSize * int64(count))
	if !f.isAggregator() || pieceSize <= 0 || count <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 4 << 20
	}
	// The file region covered by the whole collective is
	// [base, base + count*nprocs*pieceSize); each aggregator takes its
	// contiguous share of it (two-phase file domains).
	total := int64(count) * int64(f.nprocs) * pieceSize
	nAgg := (f.nprocs + f.aggRatio - 1) / f.aggRatio
	domain := (total + int64(nAgg) - 1) / int64(nAgg)
	aggIdx := int64(f.rank / f.aggRatio)
	start := base + aggIdx*domain
	end := start + domain
	if end > base+total {
		end = base + total
	}
	if start >= end {
		return
	}
	f.lowerMerged(start, end-start, chunk, true)
}

// CollectiveWriteGathered is MPI_File_write_at_all with a single aggregator
// (ROMIO cb_nodes=1): every rank contributes perRank bytes at
// base + r·perRank; rank 0 gathers and writes the merged region. This is the
// usual lowering for small metadata/attribute regions.
func (f *File) CollectiveWriteGathered(base, perRank, chunk int64) {
	f.c[CollWrites]++
	f.account(true, perRank)
	f.exchange(perRank)
	if f.rank != 0 || perRank <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 4 << 20
	}
	f.lowerMerged(base, int64(f.nprocs)*perRank, chunk, true)
}

// CollectiveReadContig is MPI_File_read_at_all for the contiguous-by-rank
// decomposition; aggregators issue the merged reads.
func (f *File) CollectiveReadContig(base, perRank, chunk int64) {
	f.c[CollReads]++
	f.account(false, perRank)
	f.exchange(perRank)
	if !f.isAggregator() || perRank <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 4 << 20
	}
	first, n := f.groupSpan()
	start := base + int64(first)*perRank
	total := int64(n) * perRank
	f.lowerMerged(start, total, chunk, false)
}

// Piece is one extent of a noncontiguous (derived-datatype) access.
type Piece struct {
	Off, Size int64
}

// CollectiveWriteNoncontig is MPI_File_write_at_all with a noncontiguous
// filetype whose pieces interleave with other ranks' data at sub-chunk
// granularity, so two-phase aggregation cannot form contiguous file
// domains. ROMIO then falls back to data sieving: every piece becomes a
// synchronous lock + read-modify-write round, modeled as a seek + write +
// fsync per piece. Darshan's MPIIO module still sees one collective write
// of the summed bytes per rank — which is why the paper's E2E run looks
// reasonable at the MPI-IO level while the POSIX level shows the disaster.
func (f *File) CollectiveWriteNoncontig(pieces []Piece) {
	f.c[CollWrites]++
	var total int64
	for _, p := range pieces {
		if p.Size <= 0 {
			continue
		}
		total += p.Size
		if p.Off != f.lastEnd {
			f.emit(darshan.Op{Kind: darshan.OpSeek, File: f.fileID, Offset: p.Off})
		}
		f.emit(darshan.Op{Kind: darshan.OpWrite, File: f.fileID, Offset: p.Off, Size: p.Size})
		f.emit(darshan.Op{Kind: darshan.OpFsync, File: f.fileID})
		f.lastEnd = p.Off + p.Size
	}
	f.account(true, total)
	f.exchange(total)
}

// exchange emits the POSIX-invisible two-phase data exchange every rank
// participates in.
func (f *File) exchange(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	f.emit(darshan.Op{Kind: darshan.OpExchange, File: f.fileID, Size: bytes})
}

// lowerMerged emits the aggregator's contiguous POSIX accesses.
func (f *File) lowerMerged(start, total, chunk int64, write bool) {
	for off := start; off < start+total; off += chunk {
		n := chunk
		if off+n > start+total {
			n = start + total - off
		}
		if off != f.lastEnd {
			f.emit(darshan.Op{Kind: darshan.OpSeek, File: f.fileID, Offset: off})
		}
		kind := darshan.OpRead
		if write {
			kind = darshan.OpWrite
		}
		f.emit(darshan.Op{Kind: kind, File: f.fileID, Offset: off, Size: n})
		f.lastEnd = off + n
	}
}
