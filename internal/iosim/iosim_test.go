package iosim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/hpc-repro/aiio/internal/darshan"
)

func quietParams() Params {
	p := DefaultParams()
	p.NoiseSigma = 0
	return p
}

// seqWriteJob writes n transfers of size sz sequentially from each of nprocs
// processes, optionally fsyncing after each write.
func seqWriteJob(nprocs, n int, sz int64, fsync bool) Job {
	return Job{
		Name: "w", NProcs: nprocs, FS: DefaultFS(), Seed: 1,
		Gen: func(rank int, emit func(darshan.Op)) {
			base := int64(rank) * int64(n) * sz
			emit(darshan.Op{Kind: darshan.OpOpen})
			for i := 0; i < n; i++ {
				emit(darshan.Op{Kind: darshan.OpWrite, Offset: base + int64(i)*sz, Size: sz})
				if fsync {
					emit(darshan.Op{Kind: darshan.OpFsync})
				}
			}
			emit(darshan.Op{Kind: darshan.OpClose})
		},
	}
}

func seqReadJob(nprocs, n int, sz int64, seekPerRead bool) Job {
	return Job{
		Name: "r", NProcs: nprocs, FS: DefaultFS(), Seed: 1,
		Gen: func(rank int, emit func(darshan.Op)) {
			base := int64(rank) * int64(n) * sz
			emit(darshan.Op{Kind: darshan.OpOpen})
			for i := 0; i < n; i++ {
				off := base + int64(i)*sz
				if seekPerRead || i == 0 {
					emit(darshan.Op{Kind: darshan.OpSeek, Offset: off})
				}
				emit(darshan.Op{Kind: darshan.OpRead, Offset: off, Size: sz})
			}
			emit(darshan.Op{Kind: darshan.OpClose})
		},
	}
}

func randReadJob(nprocs, n int, sz int64) Job {
	return Job{
		Name: "rr", NProcs: nprocs, FS: DefaultFS(), Seed: 1,
		Gen: func(rank int, emit func(darshan.Op)) {
			rng := rand.New(rand.NewSource(int64(rank) + 7))
			emit(darshan.Op{Kind: darshan.OpOpen})
			region := int64(n) * sz
			base := int64(rank) * region
			for i := 0; i < n; i++ {
				off := base + rng.Int63n(region-sz+1)
				emit(darshan.Op{Kind: darshan.OpSeek, Offset: off})
				emit(darshan.Op{Kind: darshan.OpRead, Offset: off, Size: sz})
			}
			emit(darshan.Op{Kind: darshan.OpClose})
		},
	}
}

func TestRunBasicAccounting(t *testing.T) {
	rec, res := Run(seqWriteJob(4, 16, 1*MiB, false), quietParams())
	if rec.Counter(darshan.PosixWrites) != 64 {
		t.Errorf("POSIX_WRITES = %v", rec.Counter(darshan.PosixWrites))
	}
	if res.TotalBytes != 64*MiB {
		t.Errorf("TotalBytes = %v", res.TotalBytes)
	}
	if res.SlowestSeconds <= 0 || res.PerfMiBps <= 0 {
		t.Fatalf("non-positive timing: %+v", res)
	}
	if rec.PerfMiBps != res.PerfMiBps {
		t.Errorf("record perf %v != result perf %v", rec.PerfMiBps, res.PerfMiBps)
	}
	max := 0.0
	for _, s := range res.PerProcSeconds {
		if s > max {
			max = s
		}
	}
	if max != res.SlowestSeconds {
		t.Errorf("SlowestSeconds %v != max per-proc %v", res.SlowestSeconds, max)
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSmallSyncWritesAreRequestBound(t *testing.T) {
	// Pattern 1 (Fig. 7): 1 KiB fsync'd writes vs 1 MiB fsync'd writes,
	// equal total bytes. The paper reports 104x; we require >= 20x.
	p := quietParams()
	_, small := Run(seqWriteJob(16, 1024, 1*KiB, true), p)
	_, large := Run(seqWriteJob(16, 1, 1*MiB, true), p)
	ratio := large.PerfMiBps / small.PerfMiBps
	if ratio < 20 {
		t.Errorf("large/small sync write perf ratio = %.1f, want >= 20 (small=%.2f large=%.2f MiB/s)",
			ratio, small.PerfMiBps, large.PerfMiBps)
	}
}

func TestBufferedSmallWritesCoalesce(t *testing.T) {
	// Without fsync, contiguous small writes coalesce in the write-back
	// cache and should be far faster than the fsync'd version.
	p := quietParams()
	_, sync := Run(seqWriteJob(16, 1024, 1*KiB, true), p)
	_, buffered := Run(seqWriteJob(16, 1024, 1*KiB, false), p)
	if buffered.PerfMiBps < 5*sync.PerfMiBps {
		t.Errorf("buffered %.2f MiB/s not >> sync %.2f MiB/s", buffered.PerfMiBps, sync.PerfMiBps)
	}
}

func TestSequentialReadBeatsRandomRead(t *testing.T) {
	p := quietParams()
	_, seq := Run(seqReadJob(16, 1024, 1*KiB, true), p)
	_, rnd := Run(randReadJob(16, 1024, 1*KiB), p)
	if seq.PerfMiBps < 2*rnd.PerfMiBps {
		t.Errorf("seq read %.2f MiB/s not >= 2x random read %.2f MiB/s",
			seq.PerfMiBps, rnd.PerfMiBps)
	}
}

func TestSeekSyscallOverheadVisible(t *testing.T) {
	// Pattern 2 (Fig. 8): removing the per-read lseek must improve
	// performance measurably (paper: 1.56x). Require >= 1.1x.
	p := quietParams()
	_, withSeeks := Run(seqReadJob(64, 1024, 1*KiB, true), p)
	_, noSeeks := Run(seqReadJob(64, 1024, 1*KiB, false), p)
	if noSeeks.PerfMiBps < 1.1*withSeeks.PerfMiBps {
		t.Errorf("seek removal speedup = %.2fx, want >= 1.1x (with=%.1f without=%.1f)",
			noSeeks.PerfMiBps/withSeeks.PerfMiBps, withSeeks.PerfMiBps, noSeeks.PerfMiBps)
	}
}

func TestOpensAreExpensive(t *testing.T) {
	manyFiles := Job{
		Name: "many", NProcs: 4, FS: DefaultFS(), Seed: 1,
		Gen: func(rank int, emit func(darshan.Op)) {
			for f := int32(0); f < 64; f++ {
				emit(darshan.Op{Kind: darshan.OpOpen, File: f})
				emit(darshan.Op{Kind: darshan.OpRead, File: f, Offset: 0, Size: 64 * KiB})
				emit(darshan.Op{Kind: darshan.OpClose, File: f})
			}
		},
	}
	oneFile := Job{
		Name: "one", NProcs: 4, FS: DefaultFS(), Seed: 1,
		Gen: func(rank int, emit func(darshan.Op)) {
			emit(darshan.Op{Kind: darshan.OpOpen})
			for i := int64(0); i < 64; i++ {
				emit(darshan.Op{Kind: darshan.OpRead, Offset: i * 64 * KiB, Size: 64 * KiB})
			}
			emit(darshan.Op{Kind: darshan.OpClose})
		},
	}
	p := quietParams()
	_, many := Run(manyFiles, p)
	_, one := Run(oneFile, p)
	if one.PerfMiBps < 1.2*many.PerfMiBps {
		t.Errorf("single-file %.1f MiB/s not >= 1.2x many-file %.1f MiB/s",
			one.PerfMiBps, many.PerfMiBps)
	}
}

func TestStripeWidthScalesBandwidth(t *testing.T) {
	job := seqWriteJob(32, 16, 1*MiB, false)
	p := quietParams()
	_, narrow := Run(job, p)
	job.FS.StripeWidth = 8
	_, wide := Run(job, p)
	if wide.PerfMiBps < 1.5*narrow.PerfMiBps {
		t.Errorf("width-8 %.1f MiB/s not >= 1.5x width-1 %.1f MiB/s",
			wide.PerfMiBps, narrow.PerfMiBps)
	}
}

func TestLargerStripeReducesRPCLoad(t *testing.T) {
	// Fig. 14 mechanism: 4 MiB writes against 1 MiB stripes need 4 RPCs
	// each; with 4 MiB stripes, one. Perf must improve.
	mk := func(stripe int64) Job {
		j := seqWriteJob(64, 64, 4*MiB, false)
		j.FS = FSConfig{StripeSize: stripe, StripeWidth: 1}
		return j
	}
	p := quietParams()
	_, s1 := Run(mk(1*MiB), p)
	_, s4 := Run(mk(4*MiB), p)
	if s4.PerfMiBps <= s1.PerfMiBps {
		t.Errorf("stripe 4M %.1f MiB/s not > stripe 1M %.1f MiB/s", s4.PerfMiBps, s1.PerfMiBps)
	}
}

func TestUnalignedWritesPayRMW(t *testing.T) {
	mk := func(shift int64) Job {
		return Job{
			Name: "u", NProcs: 8, FS: DefaultFS(), Seed: 1,
			Gen: func(rank int, emit func(darshan.Op)) {
				base := int64(rank)*64*MiB + shift
				emit(darshan.Op{Kind: darshan.OpOpen})
				for i := int64(0); i < 256; i++ {
					emit(darshan.Op{Kind: darshan.OpWrite, Offset: base + i*4*MiB, Size: 1 * KiB})
					emit(darshan.Op{Kind: darshan.OpFsync})
				}
				emit(darshan.Op{Kind: darshan.OpClose})
			},
		}
	}
	p := quietParams()
	_, aligned := Run(mk(0), p)
	_, unaligned := Run(mk(777), p)
	if unaligned.SlowestSeconds <= aligned.SlowestSeconds {
		t.Errorf("unaligned writes not slower: %.4fs vs %.4fs",
			unaligned.SlowestSeconds, aligned.SlowestSeconds)
	}
}

func TestMoreBytesNeverFaster(t *testing.T) {
	p := quietParams()
	prev := 0.0
	for _, n := range []int{8, 16, 32, 64} {
		_, res := Run(seqWriteJob(4, n, 1*MiB, false), p)
		if res.SlowestSeconds < prev {
			t.Errorf("elapsed decreased when writing more: n=%d %.6fs < %.6fs", n, res.SlowestSeconds, prev)
		}
		prev = res.SlowestSeconds
	}
}

func TestNoiseIsSeededAndBounded(t *testing.T) {
	p := DefaultParams() // noise on
	job := seqWriteJob(4, 8, 1*MiB, false)
	_, a := Run(job, p)
	_, b := Run(job, p)
	if a.PerfMiBps != b.PerfMiBps {
		t.Error("same seed produced different performance")
	}
	job.Seed = 2
	_, c := Run(job, p)
	if a.PerfMiBps == c.PerfMiBps {
		t.Error("different seeds produced identical performance (noise inactive?)")
	}
}

func TestZeroAndNegativeSizeOpsAreSafe(t *testing.T) {
	job := Job{
		Name: "edge", NProcs: 1, FS: DefaultFS(), Seed: 1,
		Gen: func(rank int, emit func(darshan.Op)) {
			emit(darshan.Op{Kind: darshan.OpWrite, Offset: 0, Size: 0})
			emit(darshan.Op{Kind: darshan.OpRead, Offset: 0, Size: -5})
			emit(darshan.Op{Kind: darshan.OpFsync})
		},
	}
	_, res := Run(job, quietParams())
	if res.SlowestSeconds <= 0 {
		t.Errorf("elapsed = %v", res.SlowestSeconds)
	}
}

func TestInsertExtentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var list []extent
		covered := make(map[int64]bool)
		for i := 0; i < 200; i++ {
			off := int64(rng.Intn(500))
			ln := int64(1 + rng.Intn(40))
			insertExtent(&list, extent{off, off + ln})
			for b := off; b < off+ln; b++ {
				covered[b] = true
			}
		}
		// Sorted, disjoint, non-adjacent overlap-free.
		if !sort.SliceIsSorted(list, func(i, j int) bool { return list[i].off < list[j].off }) {
			return false
		}
		total := int64(0)
		for i, e := range list {
			if e.end <= e.off {
				return false
			}
			if i > 0 && e.off < list[i-1].end {
				return false
			}
			total += e.end - e.off
		}
		// Union coverage must match exactly.
		if total != int64(len(covered)) {
			return false
		}
		for b := range covered {
			i := sort.Search(len(list), func(i int) bool { return list[i].end > b })
			if i >= len(list) || b < list[i].off {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFSConfigNormalization(t *testing.T) {
	fs := FSConfig{}.normalized()
	if fs.StripeSize != 1*MiB || fs.StripeWidth != 1 {
		t.Errorf("normalized zero config = %+v", fs)
	}
	p := DefaultParams()
	if got := (FSConfig{StripeSize: 64 * MiB, StripeWidth: 1}).rpcChunk(&p); got != p.MaxRPCSize {
		t.Errorf("rpcChunk with huge stripe = %d, want MaxRPCSize", got)
	}
	if got := (FSConfig{StripeSize: 1, StripeWidth: 1}).rpcChunk(&p); got != 4*KiB {
		t.Errorf("rpcChunk floor = %d, want 4KiB", got)
	}
}

func BenchmarkRunSeqWrite(b *testing.B) {
	p := quietParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(seqWriteJob(8, 128, 1*MiB, false), p)
	}
}

func TestStripingBalancesHotspots(t *testing.T) {
	// Two jobs moving the same bytes over width-4 stripes: one hammers a
	// single 1 MiB region (one OST), the other spreads across the file.
	// The spread job must finish faster (straggler-OST model).
	fs := FSConfig{StripeSize: 1 * MiB, StripeWidth: 4}
	mk := func(spread bool) Job {
		return Job{
			Name: "hotspot", NProcs: 8, FS: fs, Seed: 1,
			Gen: func(rank int, emit func(darshan.Op)) {
				for i := int64(0); i < 128; i++ {
					// Spread: consecutive 1 MiB stripes round-robin over
					// the 4 OSTs; hot: every offset is a multiple of
					// 4 MiB, i.e. always stripe index ≡ 0.
					off := (int64(rank)*128 + i) * 4 * MiB
					if spread {
						off = (int64(rank)*128 + i) * MiB
					}
					emit(darshan.Op{Kind: darshan.OpSeek, Offset: off})
					emit(darshan.Op{Kind: darshan.OpRead, Offset: off, Size: 64 * KiB})
				}
			},
		}
	}
	p := quietParams()
	_, hot := Run(mk(false), p)
	_, spread := Run(mk(true), p)
	if spread.ServerSeconds >= hot.ServerSeconds {
		t.Errorf("spread server time %.5fs not below single-OST hotspot %.5fs",
			spread.ServerSeconds, hot.ServerSeconds)
	}
	if spread.PerfMiBps <= hot.PerfMiBps {
		t.Errorf("spread %.1f MiB/s not faster than hotspot %.1f MiB/s",
			spread.PerfMiBps, hot.PerfMiBps)
	}
}

func TestFilePerProcessSpreadsAcrossOSTs(t *testing.T) {
	// With per-file OST rotation, N single-stripe files land on different
	// OSTs, so file-per-process scales better than everything on OST 0.
	fs := FSConfig{StripeSize: 1 * MiB, StripeWidth: 8}
	job := Job{
		Name: "fpp", NProcs: 8, FS: fs, Seed: 1,
		Gen: func(rank int, emit func(darshan.Op)) {
			f := int32(rank)
			emit(darshan.Op{Kind: darshan.OpOpen, File: f})
			for i := int64(0); i < 64; i++ {
				emit(darshan.Op{Kind: darshan.OpWrite, File: f, Offset: i * 16 * KiB, Size: 16 * KiB})
			}
			emit(darshan.Op{Kind: darshan.OpClose, File: f})
		},
	}
	narrow := job
	narrow.FS = FSConfig{StripeSize: 1 * MiB, StripeWidth: 1}
	p := quietParams()
	_, wide := Run(job, p)
	_, one := Run(narrow, p)
	if wide.ServerSeconds > one.ServerSeconds {
		t.Errorf("8 rotated files on 8 OSTs (%.5fs server) slower than on 1 OST (%.5fs)",
			wide.ServerSeconds, one.ServerSeconds)
	}
}

func TestOpExchangeChargesClientTimeOnly(t *testing.T) {
	// OpExchange (middleware collective exchange) must cost client time but
	// never move a POSIX counter or touch the servers.
	base := Job{
		Name: "x", NProcs: 4, FS: DefaultFS(), Seed: 1,
		Gen: func(rank int, emit func(darshan.Op)) {
			emit(darshan.Op{Kind: darshan.OpWrite, Offset: 0, Size: 1 * MiB})
		},
	}
	withExchange := base
	withExchange.Gen = func(rank int, emit func(darshan.Op)) {
		emit(darshan.Op{Kind: darshan.OpWrite, Offset: 0, Size: 1 * MiB})
		for i := 0; i < 100; i++ {
			emit(darshan.Op{Kind: darshan.OpExchange, Size: 1 * MiB})
		}
	}
	p := quietParams()
	recA, resA := Run(base, p)
	recB, resB := Run(withExchange, p)
	if recA.Counters != recB.Counters {
		t.Error("OpExchange changed the POSIX counters")
	}
	if resB.SlowestSeconds <= resA.SlowestSeconds {
		t.Errorf("exchange did not cost time: %.6f vs %.6f",
			resB.SlowestSeconds, resA.SlowestSeconds)
	}
	if resB.ServerSeconds != resA.ServerSeconds {
		t.Error("OpExchange touched the servers")
	}
}
