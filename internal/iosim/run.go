package iosim

import (
	"math"
	"math/rand"
	"runtime"
	"sync"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// Job describes one application run: N processes, each emitting a POSIX
// operation stream, against a file system layout. Gen is called once per
// rank, possibly concurrently from multiple goroutines, and must emit that
// rank's operations in program order.
type Job struct {
	Name   string
	JobID  int64
	Year   int
	NProcs int
	FS     FSConfig
	// Seed drives the run-to-run noise (and may be used by Gen for
	// randomized offsets).
	Seed int64
	Gen  func(rank int, emit func(darshan.Op))
}

// Result captures the simulated execution of a Job.
type Result struct {
	// PerProcSeconds is each rank's elapsed I/O time (client + server share).
	PerProcSeconds []float64
	// SlowestSeconds is the Eq. 1 denominator.
	SlowestSeconds float64
	// ServerSeconds is the aggregate server busy time.
	ServerSeconds float64
	// TotalBytes is the Eq. 1 numerator.
	TotalBytes float64
	// PerfMiBps is the Eq. 1 performance estimate in MiB/s.
	PerfMiBps float64
}

// Run executes the job against the simulated file system and returns the
// Darshan record (with the performance tag filled in per Eq. 1) along with
// the detailed Result.
func Run(job Job, params Params) (*darshan.Record, Result) {
	fs := job.FS.normalized()
	if params.FileAlign <= 0 {
		params.FileAlign = fs.StripeSize
	}
	n := job.NProcs
	if n <= 0 {
		n = 1
	}
	coll := darshan.NewCollector(n, params.MemAlign, params.FileAlign)

	clientSeconds := make([]float64, n)
	demands := make([]serverDemand, n)

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	ranks := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rank := range ranks {
				pc := coll.Proc(rank)
				sim := NewProcSim(&params, fs)
				job.Gen(rank, func(op darshan.Op) {
					pc.Observe(op)
					sim.Observe(op)
				})
				clientSeconds[rank], demands[rank] = sim.Finish()
			}
		}()
	}
	for rank := 0; rank < n; rank++ {
		ranks <- rank
	}
	close(ranks)
	wg.Wait()

	var total serverDemand
	for i := range demands {
		total.add(demands[i])
	}
	server := serverSeconds(total, &params, fs)

	// Run-to-run noise: multiplicative log-normal interference, reproducible
	// from the job seed.
	noise := 1.0
	if params.NoiseSigma > 0 {
		rng := rand.New(rand.NewSource(job.Seed ^ 0x5eed5eed))
		noise = math.Exp(rng.NormFloat64() * params.NoiseSigma)
	}

	res := Result{
		PerProcSeconds: make([]float64, n),
		ServerSeconds:  server,
	}
	for rank := 0; rank < n; rank++ {
		// Each process experiences its own serial client time plus the
		// shared server busy time (the storage system is the shared
		// resource every rank waits on).
		t := (clientSeconds[rank] + server) * noise
		if t <= 0 {
			t = 1e-9
		}
		res.PerProcSeconds[rank] = t
		if t > res.SlowestSeconds {
			res.SlowestSeconds = t
		}
	}

	rec := coll.Finalize(fs.StripeSize, fs.StripeWidth)
	rec.JobID = job.JobID
	rec.App = job.Name
	rec.Year = job.Year
	res.TotalBytes = rec.TotalBytes()
	if res.SlowestSeconds > 0 {
		res.PerfMiBps = res.TotalBytes / res.SlowestSeconds / MiB
	}
	rec.PerfMiBps = res.PerfMiBps
	rec.SlowestSeconds = res.SlowestSeconds
	return rec, res
}
