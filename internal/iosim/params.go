// Package iosim is a parametric cost model of a parallel file system in the
// style of the Lustre scratch system on Cori, which the paper's evaluation
// uses. It is the substitute substrate for the real machine: workloads are
// streams of POSIX operations (internal/darshan.Op) executed by N processes,
// and the simulator computes the elapsed I/O time of each process so that the
// paper's performance tag (Eq. 1: total bytes / time of the slowest process)
// can be derived.
//
// The model deliberately encodes the mechanisms the paper's diagnosis
// flags, so that counter → performance relationships exist for the AI models
// to learn:
//
//   - per-request overhead: small transfers are request-bound, not
//     bandwidth-bound (POSIX_SIZE_*_0_100/100_1K bottlenecks, Figs. 7, 9, 11);
//   - synchronous commits: fsync-per-write turns every small write into a
//     server commit (IOR -Y);
//   - client write-back cache: buffered contiguous small writes coalesce
//     into large RPCs, so small writes are only catastrophic when synced or
//     non-mergeable (E2E, Fig. 13);
//   - read-ahead: forward-sequential reads are served from a prefetch
//     window; strided and random reads pay per-request server costs and
//     defeat read-ahead (Figs. 10, 12);
//   - seek syscall overhead: lseek costs client time even when the target
//     equals the current position (IOR's seek-per-read, Fig. 8);
//   - alignment: writes not aligned to the file/stripe boundary trigger
//     server read-modify-write (POSIX_FILE_NOT_ALIGNED, Fig. 11);
//   - metadata: opens and stats are MDS operations with limited throughput
//     (POSIX_OPENS bottleneck, DASSA, Fig. 15);
//   - striping: aggregate bandwidth and request capacity scale with
//     LUSTRE_STRIPE_WIDTH, and the RPC size is bounded by the stripe size
//     (OpenPMD stripe tuning, Fig. 14).
package iosim

// Params holds the cost-model constants. The defaults are calibrated so the
// six IOR patterns of Section 4.1 reproduce the paper's qualitative results
// (ordering and rough improvement factors).
type Params struct {
	// OSTBandwidth is the streaming bandwidth of one OST in bytes/second.
	OSTBandwidth float64
	// OSTCommitIOPS is how many synchronous small-write commits one OST can
	// retire per second (fsync-forced flushes).
	OSTCommitIOPS float64
	// OSTWriteIOPS is how many buffered write RPCs one OST absorbs per second.
	OSTWriteIOPS float64
	// OSTReadIOPS is how many read RPCs one OST serves per second.
	OSTReadIOPS float64
	// OSTSeekPenalty is the extra server seconds for a discontiguous RPC.
	OSTSeekPenalty float64
	// RPCLatency is the client-visible round-trip latency of one synchronous
	// RPC, in seconds.
	RPCLatency float64
	// SyscallOverhead is the client cost of any POSIX call, in seconds.
	SyscallOverhead float64
	// SeekSyscallOverhead is the client cost of one lseek, including Lustre
	// client lock checks; IOR's seek-before-every-read makes this visible.
	SeekSyscallOverhead float64
	// OpenLatency and StatLatency are client-visible MDS round trips.
	OpenLatency float64
	StatLatency float64
	// MDSOpsPerSec is the metadata server capacity shared by all processes.
	MDSOpsPerSec float64
	// FileOverhead is the per-process, per-file first-touch cost (layout
	// fetch, lock acquisition).
	FileOverhead float64
	// MemBandwidth is the client memcpy bandwidth (cache hits), bytes/second.
	MemBandwidth float64
	// ReadAheadWindow is the prefetch window for sequential reads, bytes.
	ReadAheadWindow int64
	// MaxRPCSize caps the size of one RPC chunk, bytes. The effective chunk
	// is min(MaxRPCSize, stripe size).
	MaxRPCSize int64
	// RMWFactor is the extra read-RPC equivalents charged for a write RPC
	// that is not aligned to the file alignment boundary.
	RMWFactor float64
	// UnalignedReadFactor is the extra read-RPC fraction for unaligned reads.
	UnalignedReadFactor float64
	// MemUnalignedPenalty is the client-side multiplier on memcpy cost for
	// accesses from unaligned user buffers.
	MemUnalignedPenalty float64
	// CollectiveLatency is the per-rank synchronization cost of one
	// middleware collective (darshan.OpExchange): the barrier plus exchange
	// setup of two-phase I/O. The exchanged bytes additionally move at
	// MemBandwidth (send + receive).
	CollectiveLatency float64
	// NoiseSigma is the standard deviation of the multiplicative log-normal
	// run-to-run noise applied to elapsed times (system interference).
	// Zero disables noise.
	NoiseSigma float64
	// MemAlign and FileAlign are the alignment boundaries reported as
	// POSIX_MEM_ALIGNMENT and POSIX_FILE_ALIGNMENT. FileAlign <= 0 derives
	// the boundary from the file's stripe size, which is what Darshan
	// reports on Lustre.
	MemAlign  int64
	FileAlign int64
}

// DefaultParams returns the calibrated Cori-Lustre-like constants used by
// the experiments.
func DefaultParams() Params {
	return Params{
		OSTBandwidth:        512 * MiB,
		OSTCommitIOPS:       5000,
		OSTWriteIOPS:        40000,
		OSTReadIOPS:         200000,
		OSTSeekPenalty:      8e-6,
		RPCLatency:          300e-6,
		SyscallOverhead:     2e-6,
		SeekSyscallOverhead: 300e-6,
		OpenLatency:         1.2e-3,
		StatLatency:         0.4e-3,
		MDSOpsPerSec:        3000,
		FileOverhead:        6e-3,
		MemBandwidth:        8 * GiB,
		ReadAheadWindow:     1 * MiB,
		MaxRPCSize:          4 * MiB,
		RMWFactor:           1.0,
		UnalignedReadFactor: 0.3,
		MemUnalignedPenalty: 1.25,
		CollectiveLatency:   200e-6,
		NoiseSigma:          0.06,
		MemAlign:            8,
		FileAlign:           0, // stripe-derived
	}
}

// Byte-size units.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
)

// FSConfig is the Lustre layout of the files a job accesses. The paper's
// tests use the Cori defaults (1 OST, 1 MiB stripe) unless tuned.
type FSConfig struct {
	// StripeSize is LUSTRE_STRIPE_SIZE in bytes.
	StripeSize int64
	// StripeWidth is LUSTRE_STRIPE_WIDTH: the number of OSTs.
	StripeWidth int
}

// DefaultFS returns the Cori default layout: 1 OST, 1 MiB stripes.
func DefaultFS() FSConfig {
	return FSConfig{StripeSize: 1 * MiB, StripeWidth: 1}
}

func (fs FSConfig) normalized() FSConfig {
	if fs.StripeSize <= 0 {
		fs.StripeSize = 1 * MiB
	}
	if fs.StripeWidth <= 0 {
		fs.StripeWidth = 1
	}
	return fs
}

// rpcChunk is the effective RPC granularity for this layout.
func (fs FSConfig) rpcChunk(p *Params) int64 {
	chunk := fs.StripeSize
	if chunk > p.MaxRPCSize {
		chunk = p.MaxRPCSize
	}
	if chunk < 4*KiB {
		chunk = 4 * KiB
	}
	return chunk
}
