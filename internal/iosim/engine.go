package iosim

import (
	"sort"

	"github.com/hpc-repro/aiio/internal/darshan"
)

// ostDemand is the load one OST receives.
type ostDemand struct {
	bytes        float64 // bytes moved to/from the OST
	commitRPCs   float64 // synchronous (fsync-forced) write RPCs
	bufferedRPCs float64 // write-back flush RPCs
	readRPCs     float64 // read RPCs
	seeks        float64 // discontiguous RPCs
}

// serverDemand accumulates, per OST, the load a process places on the
// storage servers. Striping maps each RPC chunk to the OST serving its
// stripe (rotated by the file id, like Lustre's per-file starting OST), so
// imbalanced access patterns create straggler OSTs instead of vanishing
// into a perfectly balanced average.
type serverDemand struct {
	ost    []ostDemand
	mdsOps float64 // metadata operations (open/stat); MDS is not striped
}

func newServerDemand(width int) serverDemand {
	return serverDemand{ost: make([]ostDemand, width)}
}

func (d *serverDemand) add(o serverDemand) {
	if len(d.ost) < len(o.ost) {
		grown := make([]ostDemand, len(o.ost))
		copy(grown, d.ost)
		d.ost = grown
	}
	for i := range o.ost {
		d.ost[i].bytes += o.ost[i].bytes
		d.ost[i].commitRPCs += o.ost[i].commitRPCs
		d.ost[i].bufferedRPCs += o.ost[i].bufferedRPCs
		d.ost[i].readRPCs += o.ost[i].readRPCs
		d.ost[i].seeks += o.ost[i].seeks
	}
	d.mdsOps += o.mdsOps
}

// serverSeconds converts the per-OST demand into the storage system's busy
// time: the OSTs work in parallel, so the data path finishes with the most
// loaded OST; the MDS is a single shared service.
func serverSeconds(d serverDemand, p *Params, fs FSConfig) float64 {
	slowest := 0.0
	for i := range d.ost {
		o := &d.ost[i]
		t := o.bytes / p.OSTBandwidth
		t += o.commitRPCs / p.OSTCommitIOPS
		t += o.bufferedRPCs / p.OSTWriteIOPS
		t += o.readRPCs / p.OSTReadIOPS
		t += o.seeks * p.OSTSeekPenalty
		if t > slowest {
			slowest = t
		}
	}
	return slowest + d.mdsOps/p.MDSOpsPerSec
}

// extent is a dirty byte range [off, off+len) in the client cache.
type extent struct {
	off, end int64
}

// simFile is the per-(process, file) simulation state.
type simFile struct {
	id             int32
	dirty          []extent // sorted, disjoint write-back extents
	raStart, raEnd int64    // current read-ahead window
	lastEnd        int64    // end offset of the last data access
	lastServerOff  int64    // where the server-side stream left off
	touched        bool
	firstTouch     bool
}

// ProcSim simulates the I/O time of one process. Like darshan.ProcCollector
// it is single-goroutine state; one ProcSim runs per rank.
type ProcSim struct {
	p        *Params
	fs       FSConfig
	clientS  float64 // serial client-side seconds
	demand   serverDemand
	files    map[int32]*simFile
	rpcChunk int64
}

// NewProcSim returns the simulator state for one process.
func NewProcSim(p *Params, fs FSConfig) *ProcSim {
	fs = fs.normalized()
	return &ProcSim{
		p:        p,
		fs:       fs,
		demand:   newServerDemand(fs.StripeWidth),
		files:    make(map[int32]*simFile),
		rpcChunk: fs.rpcChunk(p),
	}
}

// ostOf maps a file offset to the OST serving its stripe, rotating the
// starting OST by the file id as Lustre does when it allocates objects.
func (s *ProcSim) ostOf(f *simFile, off int64) *ostDemand {
	i := (int64(f.id) + off/s.fs.StripeSize) % int64(s.fs.StripeWidth)
	return &s.demand.ost[i]
}

func (s *ProcSim) file(id int32) *simFile {
	f := s.files[id]
	if f == nil {
		f = &simFile{id: id, firstTouch: true}
		s.files[id] = f
	}
	return f
}

// Observe advances the simulation by one operation.
func (s *ProcSim) Observe(op darshan.Op) {
	switch op.Kind {
	case darshan.OpOpen:
		s.clientS += s.p.OpenLatency
		s.demand.mdsOps++
		f := s.file(op.File)
		if f.firstTouch {
			s.clientS += s.p.FileOverhead
			f.firstTouch = false
		}
	case darshan.OpStat:
		s.clientS += s.p.StatLatency
		s.demand.mdsOps++
	case darshan.OpSeek:
		s.clientS += s.p.SeekSyscallOverhead
	case darshan.OpWrite:
		s.write(op)
	case darshan.OpRead:
		s.read(op)
	case darshan.OpFsync:
		s.clientS += s.p.SyscallOverhead
		s.flush(s.file(op.File), true)
	case darshan.OpClose:
		s.clientS += s.p.SyscallOverhead
		s.flush(s.file(op.File), false)
	case darshan.OpExchange:
		// Two-phase collective exchange: synchronization latency plus the
		// rank's contribution moving through memory twice (pack + send).
		s.clientS += s.p.CollectiveLatency + 2*float64(op.Size)/s.p.MemBandwidth
	}
}

// write stages data in the client write-back cache.
func (s *ProcSim) write(op darshan.Op) {
	if op.Size <= 0 {
		s.clientS += s.p.SyscallOverhead
		return
	}
	f := s.file(op.File)
	s.clientS += s.p.SyscallOverhead + s.memcpyCost(op)
	insertExtent(&f.dirty, extent{op.Offset, op.Offset + op.Size})
	f.lastEnd = op.Offset + op.Size
	f.touched = true
	// Bound cache memory: a real client flushes under dirty pressure.
	if len(f.dirty) > 8192 {
		s.flush(f, false)
	}
}

// memcpyCost is the client copy cost, inflated for unaligned user buffers.
func (s *ProcSim) memcpyCost(op darshan.Op) float64 {
	c := float64(op.Size) / s.p.MemBandwidth
	if op.MemUnaligned {
		c *= s.p.MemUnalignedPenalty
	}
	return c
}

// flush sends all dirty extents of f to the servers. sync marks an
// fsync-forced flush: the client waits for the commit and the server charges
// commit IOPS instead of buffered-write IOPS.
func (s *ProcSim) flush(f *simFile, sync bool) {
	if len(f.dirty) == 0 {
		return
	}
	for _, e := range f.dirty {
		for off := e.off; off < e.end; {
			// Chunk at RPC-granularity boundaries so a large extent maps to
			// ceil(len/chunk) RPCs and stripe size bounds the RPC size.
			next := (off/s.rpcChunk + 1) * s.rpcChunk
			if next > e.end {
				next = e.end
			}
			n := next - off
			ost := s.ostOf(f, off)
			ost.bytes += float64(n)
			if sync {
				ost.commitRPCs++
				s.clientS += s.p.RPCLatency
			} else {
				ost.bufferedRPCs++
			}
			if off != f.lastServerOff {
				ost.seeks++
			}
			// Partial-chunk writes off the alignment boundary trigger
			// read-modify-write on the server.
			if (off%s.p.FileAlign != 0 || next%s.p.FileAlign != 0) && n < s.p.FileAlign {
				ost.readRPCs += s.p.RMWFactor
			}
			f.lastServerOff = next
			off = next
		}
	}
	f.dirty = f.dirty[:0]
}

// read serves a read either from the read-ahead window or from the servers.
func (s *ProcSim) read(op darshan.Op) {
	if op.Size <= 0 {
		s.clientS += s.p.SyscallOverhead
		return
	}
	f := s.file(op.File)
	s.clientS += s.p.SyscallOverhead + s.memcpyCost(op)

	end := op.Offset + op.Size
	// Read-ahead only engages for (nearly) consecutive forward access, like
	// the kernel's sequential-pattern detector; larger forward strides fall
	// through to direct reads, so strided patterns defeat prefetching.
	sequential := !f.touched || (op.Offset >= f.lastEnd && op.Offset-f.lastEnd <= 4*KiB)
	inWindow := op.Offset >= f.raStart && end <= f.raEnd

	switch {
	case inWindow:
		// Client cache hit; no server involvement.
	case sequential:
		// Forward-sequential (or small forward stride inside one window):
		// extend the read-ahead window far enough to cover the access.
		start := f.raEnd
		if start < op.Offset {
			start = op.Offset
		}
		win := s.p.ReadAheadWindow
		fetchEnd := ((end-start)/win + 1) * win
		fetch := fetchEnd // bytes fetched ahead
		// Spread the prefetch across the stripes it covers.
		for off := start; off < start+fetch; off += s.rpcChunk {
			n := s.rpcChunk
			if off+n > start+fetch {
				n = start + fetch - off
			}
			ost := s.ostOf(f, off)
			ost.bytes += float64(n)
			ost.readRPCs++
		}
		if start != f.lastServerOff {
			s.ostOf(f, start).seeks++
		}
		s.clientS += s.p.RPCLatency // first window arrival is synchronous
		f.raStart = start
		f.raEnd = start + fetch
		f.lastServerOff = f.raEnd
	default:
		// Random or backward access: direct synchronous read RPC(s),
		// read-ahead is defeated.
		for off := op.Offset; off < end; off += s.rpcChunk {
			n := s.rpcChunk
			if off+n > end {
				n = end - off
			}
			ost := s.ostOf(f, off)
			ost.bytes += float64(n)
			ost.readRPCs++
		}
		first := s.ostOf(f, op.Offset)
		first.seeks++
		if op.Offset%s.p.FileAlign != 0 {
			first.readRPCs += s.p.UnalignedReadFactor
		}
		s.clientS += s.p.RPCLatency
		f.raStart, f.raEnd = 0, 0
		f.lastServerOff = end
	}
	f.lastEnd = end
	f.touched = true
}

// Finish flushes remaining dirty data (process exit closes files) and
// returns the client-serial seconds and the aggregate server demand.
func (s *ProcSim) Finish() (clientSeconds float64, demand serverDemand) {
	for _, f := range s.files {
		s.flush(f, false)
	}
	return s.clientS, s.demand
}

// insertExtent merges e into the sorted disjoint extent list.
func insertExtent(list *[]extent, e extent) {
	l := *list
	// Fast path: append-after-last (sequential writes).
	if n := len(l); n > 0 && e.off >= l[n-1].off {
		if e.off <= l[n-1].end {
			if e.end > l[n-1].end {
				l[n-1].end = e.end
			}
			return
		}
		*list = append(l, e)
		return
	}
	i := sort.Search(len(l), func(i int) bool { return l[i].end >= e.off })
	j := sort.Search(len(l), func(j int) bool { return l[j].off > e.end })
	if i == j {
		// No overlap: insert at i.
		l = append(l, extent{})
		copy(l[i+1:], l[i:])
		l[i] = e
		*list = l
		return
	}
	// Merge overlapping range [i, j).
	if l[i].off < e.off {
		e.off = l[i].off
	}
	if l[j-1].end > e.end {
		e.end = l[j-1].end
	}
	l[i] = e
	l = append(l[:i+1], l[j:]...)
	*list = l
}
