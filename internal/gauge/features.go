package gauge

import (
	"math"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/linalg"
)

// Gauge does not model raw Darshan counters: its feature engineering
// (Isakov et al., SC'20) converts them into percentage-normalized features —
// the POSIX_*_PERC names the paper's Fig. 1 displays — plus log-scaled
// magnitudes. This file reproduces that derived feature space so the Fig. 1
// comparison carries the paper's own labels.

// DerivedID indexes the Gauge feature space.
type DerivedID int

// The derived features. PERC features are fractions of the relevant
// operation count (or byte total); LOG features are log10(x+1) magnitudes.
const (
	SeqWritesPerc DerivedID = iota
	SeqReadsPerc
	ConsecWritesPerc
	ConsecReadsPerc
	FileNotAlignedPerc
	MemNotAlignedPerc
	RWSwitchesPerc
	SizeRead0_100Perc
	SizeRead100_1KPerc
	SizeRead1K_10KPerc
	SizeRead10K_100KPerc
	SizeRead100K_1MPerc
	SizeWrite0_100Perc
	SizeWrite100_1KPerc
	SizeWrite1K_10KPerc
	SizeWrite10K_100KPerc
	SizeWrite100K_1MPerc
	WriteOnlyBytesPerc
	ReadOnlyBytesPerc
	LogNProcs
	LogTotalBytes
	LogOpens
	LogSeeks
	LogStats
	LogStripeSize
	LogStripeWidth

	NumDerived
)

var derivedNames = [NumDerived]string{
	SeqWritesPerc:         "POSIX_SEQ_WRITES_PERC",
	SeqReadsPerc:          "POSIX_SEQ_READS_PERC",
	ConsecWritesPerc:      "POSIX_CONSEC_WRITES_PERC",
	ConsecReadsPerc:       "POSIX_CONSEC_READS_PERC",
	FileNotAlignedPerc:    "POSIX_FILE_NOT_ALIGNED_PERC",
	MemNotAlignedPerc:     "POSIX_MEM_NOT_ALIGNED_PERC",
	RWSwitchesPerc:        "POSIX_RW_SWITCHES_PERC",
	SizeRead0_100Perc:     "POSIX_SIZE_READ_0_100_PERC",
	SizeRead100_1KPerc:    "POSIX_SIZE_READ_100_1K_PERC",
	SizeRead1K_10KPerc:    "POSIX_SIZE_READ_1K_10K_PERC",
	SizeRead10K_100KPerc:  "POSIX_SIZE_READ_10K_100K_PERC",
	SizeRead100K_1MPerc:   "POSIX_SIZE_READ_100K_1M_PERC",
	SizeWrite0_100Perc:    "POSIX_SIZE_WRITE_0_100_PERC",
	SizeWrite100_1KPerc:   "POSIX_SIZE_WRITE_100_1K_PERC",
	SizeWrite1K_10KPerc:   "POSIX_SIZE_WRITE_1K_10K_PERC",
	SizeWrite10K_100KPerc: "POSIX_SIZE_WRITE_10K_100K_PERC",
	SizeWrite100K_1MPerc:  "POSIX_SIZE_WRITE_100K_1M_PERC",
	WriteOnlyBytesPerc:    "POSIX_write_only_bytes_perc",
	ReadOnlyBytesPerc:     "POSIX_read_only_bytes_perc",
	LogNProcs:             "LOG_NPROCS",
	LogTotalBytes:         "LOG_TOTAL_BYTES",
	LogOpens:              "LOG_POSIX_OPENS",
	LogSeeks:              "LOG_POSIX_SEEKS",
	LogStats:              "LOG_POSIX_STATS",
	LogStripeSize:         "LOG_LUSTRE_STRIPE_SIZE",
	LogStripeWidth:        "LOG_LUSTRE_STRIPE_WIDTH",
}

// DerivedName returns the Gauge feature name for index i.
func DerivedName(i int) string {
	if i < 0 || i >= int(NumDerived) {
		return "DERIVED_?"
	}
	return derivedNames[i]
}

// DerivedNames lists the Gauge feature names in canonical order.
func DerivedNames() []string {
	out := make([]string, NumDerived)
	for i := range out {
		out[i] = derivedNames[i]
	}
	return out
}

func safeFrac(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	f := num / den
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

// Derive converts one record into the Gauge feature space.
func Derive(rec *darshan.Record) []float64 {
	out := make([]float64, NumDerived)
	reads := rec.Counter(darshan.PosixReads)
	writes := rec.Counter(darshan.PosixWrites)
	ops := reads + writes
	bytesTotal := rec.TotalBytes()

	out[SeqWritesPerc] = safeFrac(rec.Counter(darshan.PosixSeqWrites), writes)
	out[SeqReadsPerc] = safeFrac(rec.Counter(darshan.PosixSeqReads), reads)
	out[ConsecWritesPerc] = safeFrac(rec.Counter(darshan.PosixConsecWrites), writes)
	out[ConsecReadsPerc] = safeFrac(rec.Counter(darshan.PosixConsecReads), reads)
	out[FileNotAlignedPerc] = safeFrac(rec.Counter(darshan.PosixFileNotAligned), ops)
	out[MemNotAlignedPerc] = safeFrac(rec.Counter(darshan.PosixMemNotAligned), ops)
	out[RWSwitchesPerc] = safeFrac(rec.Counter(darshan.PosixRWSwitches), ops)

	for i := 0; i < 5; i++ {
		out[SizeRead0_100Perc+DerivedID(i)] =
			safeFrac(rec.Counter(darshan.PosixSizeRead0_100+darshan.CounterID(i)), reads)
		out[SizeWrite0_100Perc+DerivedID(i)] =
			safeFrac(rec.Counter(darshan.PosixSizeWrite0_100+darshan.CounterID(i)), writes)
	}

	out[WriteOnlyBytesPerc] = safeFrac(rec.Counter(darshan.PosixBytesWritten), bytesTotal)
	out[ReadOnlyBytesPerc] = safeFrac(rec.Counter(darshan.PosixBytesRead), bytesTotal)

	out[LogNProcs] = features.Transform(rec.Counter(darshan.NProcs))
	out[LogTotalBytes] = features.Transform(bytesTotal)
	out[LogOpens] = features.Transform(rec.Counter(darshan.PosixOpens))
	out[LogSeeks] = features.Transform(rec.Counter(darshan.PosixSeeks))
	out[LogStats] = features.Transform(rec.Counter(darshan.PosixStats))
	out[LogStripeSize] = features.Transform(rec.Counter(darshan.LustreStripeSize))
	out[LogStripeWidth] = features.Transform(rec.Counter(darshan.LustreStripeWidth))
	return out
}

// DeriveMatrix builds the Gauge feature matrix for a record set.
func DeriveMatrix(records []*darshan.Record) *linalg.Matrix {
	m := linalg.NewMatrix(len(records), int(NumDerived))
	for i, rec := range records {
		copy(m.Row(i), Derive(rec))
	}
	return m
}
