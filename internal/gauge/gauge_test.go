package gauge

import (
	"sync"
	"testing"

	"github.com/hpc-repro/aiio/internal/darshan"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/logdb"
)

var (
	once  sync.Once
	res   *Result
	frame *features.Frame
	gErr  error
)

func analyzed(t *testing.T) (*Result, *features.Frame) {
	t.Helper()
	once.Do(func() {
		ds := logdb.Generate(logdb.GenConfig{Jobs: 500, Seed: 21})
		frame = features.Build(ds)
		cfg := DefaultConfig()
		cfg.MinClusterSize = 25
		cfg.ImportanceSample = 12
		cfg.SHAP.MaxExact = 8
		cfg.SHAP.NSamples = 512
		res, gErr = Analyze(frame, cfg)
	})
	if gErr != nil {
		t.Fatalf("Analyze: %v", gErr)
	}
	return res, frame
}

func TestGaugeFindsACluster(t *testing.T) {
	r, f := analyzed(t)
	if len(r.Members) < 25 {
		t.Fatalf("largest cluster has %d members", len(r.Members))
	}
	if len(r.Labels) != f.Len() {
		t.Fatalf("labels length %d", len(r.Labels))
	}
}

func TestGaugePerMemberErrorSpread(t *testing.T) {
	// Fig. 1a: individual member errors differ substantially from the
	// cluster-average error.
	r, _ := analyzed(t)
	if r.GroupAbsErr < 0 {
		t.Fatal("negative group error")
	}
	maxErr := 0.0
	for _, e := range r.MemberAbsErr {
		if e > maxErr {
			maxErr = e
		}
	}
	if maxErr <= r.GroupAbsErr {
		t.Errorf("max member error %.4f not above group average %.4f", maxErr, r.GroupAbsErr)
	}
}

func TestGaugeGroupVsMemberImportanceDiffer(t *testing.T) {
	// Fig. 1b vs 1c: the group's importance vector is not the member's.
	r, _ := analyzed(t)
	same := true
	for j := range r.GroupImportance {
		if r.GroupImportance[j] != r.MemberImportance[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("group and member importance identical")
	}
}

func TestGaugeNonRobustness(t *testing.T) {
	// Fig. 1d: with the cluster-mean background, at least one zero-valued
	// derived feature of the member receives non-zero impact. This is the
	// failure AIIO's zero background fixes.
	r, f := analyzed(t)
	member := Derive(f.Records[r.Members[r.MemberIndex]])
	hasZero := false
	for _, v := range member {
		if v == 0 {
			hasZero = true
		}
	}
	if !hasZero {
		t.Skip("studied member has no zero features; cannot exercise the property")
	}
	if len(r.MemberZeroFeatures) == 0 {
		t.Error("Gauge-style diagnosis was unexpectedly robust (no zero feature got impact)")
	}
	for _, j := range r.MemberZeroFeatures {
		if name := DerivedName(j); name == "DERIVED_?" {
			t.Errorf("zero feature %d has no name", j)
		}
	}
}

func TestTopCounter(t *testing.T) {
	if TopCounter([]float64{0.1, -0.9, 0.3}) != 1 {
		t.Error("TopCounter wrong")
	}
}

func TestAnalyzeAllNoise(t *testing.T) {
	// A tiny frame clusters to all noise; Analyze must error, not panic.
	ds := logdb.Generate(logdb.GenConfig{Jobs: 10, Seed: 1})
	f := features.Build(ds)
	cfg := DefaultConfig()
	cfg.MinClusterSize = 50
	if _, err := Analyze(f, cfg); err == nil {
		t.Error("Analyze accepted an unclusterable frame")
	}
}

func TestDeriveFeatures(t *testing.T) {
	rec := &darshan.Record{}
	rec.SetCounter(darshan.NProcs, 9)
	rec.SetCounter(darshan.PosixWrites, 100)
	rec.SetCounter(darshan.PosixSeqWrites, 80)
	rec.SetCounter(darshan.PosixConsecWrites, 60)
	rec.SetCounter(darshan.PosixSizeWrite100_1K, 100)
	rec.SetCounter(darshan.PosixBytesWritten, 1<<20)
	rec.SetCounter(darshan.PosixFileNotAligned, 25)

	x := Derive(rec)
	if x[SeqWritesPerc] != 0.8 {
		t.Errorf("SEQ_WRITES_PERC = %v", x[SeqWritesPerc])
	}
	if x[ConsecWritesPerc] != 0.6 {
		t.Errorf("CONSEC_WRITES_PERC = %v", x[ConsecWritesPerc])
	}
	if x[SizeWrite100_1KPerc] != 1 {
		t.Errorf("SIZE_WRITE_100_1K_PERC = %v", x[SizeWrite100_1KPerc])
	}
	if x[FileNotAlignedPerc] != 0.25 {
		t.Errorf("FILE_NOT_ALIGNED_PERC = %v", x[FileNotAlignedPerc])
	}
	// Write-only job: all bytes are writes, read percs all zero.
	if x[WriteOnlyBytesPerc] != 1 || x[ReadOnlyBytesPerc] != 0 {
		t.Errorf("byte percs = %v/%v", x[WriteOnlyBytesPerc], x[ReadOnlyBytesPerc])
	}
	for i := SizeRead0_100Perc; i <= SizeRead100K_1MPerc; i++ {
		if x[i] != 0 {
			t.Errorf("read perc %s nonzero for write-only job", DerivedName(int(i)))
		}
	}
	if x[LogNProcs] != 1 {
		t.Errorf("LOG_NPROCS = %v", x[LogNProcs])
	}
	// Empty record: everything zero, no NaNs.
	for i, v := range Derive(&darshan.Record{}) {
		if v != 0 {
			t.Errorf("empty record feature %s = %v", DerivedName(i), v)
		}
	}
	names := DerivedNames()
	if len(names) != int(NumDerived) {
		t.Fatalf("%d names", len(names))
	}
}
