// Package gauge reproduces the group-level I/O diagnosis approach of Gauge
// (Del Rosario et al., PDSW'20) that the paper's Fig. 1 critiques: cluster
// the log database with HDBSCAN, fit one performance model per cluster, and
// read group-level feature importance off that shared model with a
// cluster-mean SHAP background. The package exists to demonstrate the three
// failure modes AIIO fixes:
//
//  1. the cluster-average prediction error hides large per-member errors
//     (Fig. 1a);
//  2. group-level importance differs from an individual member's (Fig. 1b
//     vs 1c);
//  3. the non-zero (cluster-mean) background assigns impact to counters
//     whose value is zero for the member — the non-robustness of Fig. 1d.
package gauge

import (
	"fmt"
	"math"

	"github.com/hpc-repro/aiio/internal/cluster"
	"github.com/hpc-repro/aiio/internal/features"
	"github.com/hpc-repro/aiio/internal/gbdt"
	"github.com/hpc-repro/aiio/internal/linalg"
	"github.com/hpc-repro/aiio/internal/shap"
)

// Config tunes the Gauge-style analysis.
type Config struct {
	// MinClusterSize is the HDBSCAN parameter.
	MinClusterSize int
	// MemberIndex picks the member studied individually (the paper uses
	// the 204th member of cluster Gamma); wrapped modulo the cluster size.
	MemberIndex int
	// ImportanceSample bounds how many members contribute to the group
	// importance average.
	ImportanceSample int
	// SHAP configures the explainer.
	SHAP shap.Config
	Seed int64
}

// DefaultConfig mirrors the Fig. 1 setting at reproduction scale.
func DefaultConfig() Config {
	return Config{
		MinClusterSize:   30,
		MemberIndex:      204,
		ImportanceSample: 24,
		SHAP:             shap.DefaultConfig(),
		Seed:             1,
	}
}

// Result is the Fig. 1 data. Importance vectors live in Gauge's derived
// feature space (the POSIX_*_PERC features of Fig. 1); use DerivedName to
// label indices.
type Result struct {
	// Labels are the HDBSCAN labels over the frame.
	Labels []int
	// ClusterLabel is the studied (largest) cluster.
	ClusterLabel int
	// Members are frame row indices of the studied cluster.
	Members []int
	// MemberAbsErr is |prediction − actual| per member (Fig. 1a bars).
	MemberAbsErr []float64
	// GroupAbsErr is the cluster-average error (Fig. 1a "Average" line).
	GroupAbsErr float64
	// GroupImportance is the mean SHAP value per derived feature over the
	// sampled members (Fig. 1b).
	GroupImportance []float64
	// SampleImportances are the per-member SHAP vectors behind the mean
	// (the dots of the Fig. 1b beeswarm).
	SampleImportances [][]float64
	// MemberImportance is the SHAP values of the studied member (Fig. 1c).
	MemberImportance []float64
	// MemberIndex is the resolved member row (within Members).
	MemberIndex int
	// MemberZeroFeatures lists derived features that are zero for the
	// member but still received non-zero impact — the Fig. 1d
	// non-robustness (e.g. POSIX_write_only_bytes_perc getting −0.02 while
	// being 0, the paper's example).
	MemberZeroFeatures []int
}

// Analyze runs the Gauge-style pipeline on a feature frame.
func Analyze(frame *features.Frame, cfg Config) (*Result, error) {
	if cfg.MinClusterSize <= 0 {
		cfg = DefaultConfig()
	}
	// Gauge operates in its derived feature space (POSIX_*_PERC + log
	// magnitudes), not on the raw 45 counters.
	derived := DeriveMatrix(frame.Records)
	labels := cluster.HDBSCAN(derived, cluster.HDBSCANConfig{MinClusterSize: cfg.MinClusterSize})
	label, err := cluster.LargestCluster(labels)
	if err != nil {
		return nil, fmt.Errorf("gauge: %w", err)
	}
	members := cluster.Members(labels, label)
	res := &Result{Labels: labels, ClusterLabel: label, Members: members}

	// One model for the whole group, as Gauge does.
	groupX := linalg.NewMatrix(len(members), derived.Cols)
	groupY := make([]float64, len(members))
	for i, m := range members {
		copy(groupX.Row(i), derived.Row(m))
		groupY[i] = frame.Y[m]
	}
	gcfg := gbdt.DefaultConfig(gbdt.LeafWise)
	gcfg.Rounds = 120
	gcfg.Seed = cfg.Seed
	gcfg.EarlyStoppingRounds = 0
	model, err := gbdt.Train(gcfg, groupX, groupY, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("gauge: train group model: %w", err)
	}

	// Fig. 1a: per-member absolute prediction error vs the group average.
	pred := model.PredictBatch(groupX)
	res.MemberAbsErr = make([]float64, len(members))
	for i := range members {
		res.MemberAbsErr[i] = math.Abs(pred[i] - groupY[i])
		res.GroupAbsErr += res.MemberAbsErr[i]
	}
	res.GroupAbsErr /= float64(len(members))

	// Gauge explains against the cluster mean — a dense, non-zero
	// background. That is exactly what makes it non-robust at the job
	// level.
	mean := make([]float64, groupX.Cols)
	for i := 0; i < groupX.Rows; i++ {
		row := groupX.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(groupX.Rows)
	}
	explainer := shap.New(model.PredictBatch, mean, cfg.SHAP)

	// Fig. 1b: group importance = mean SHAP over sampled members.
	res.GroupImportance = make([]float64, groupX.Cols)
	sample := len(members)
	if cfg.ImportanceSample > 0 && cfg.ImportanceSample < sample {
		sample = cfg.ImportanceSample
	}
	for i := 0; i < sample; i++ {
		ex := explainer.Explain(groupX.Row(i))
		res.SampleImportances = append(res.SampleImportances, ex.Phi)
		for j, p := range ex.Phi {
			res.GroupImportance[j] += p / float64(sample)
		}
	}

	// Fig. 1c/1d: the studied member.
	res.MemberIndex = cfg.MemberIndex % len(members)
	memberRow := groupX.Row(res.MemberIndex)
	ex := explainer.Explain(memberRow)
	res.MemberImportance = ex.Phi
	for j, p := range ex.Phi {
		if memberRow[j] == 0 && p != 0 {
			res.MemberZeroFeatures = append(res.MemberZeroFeatures, j)
		}
	}
	return res, nil
}

// TopCounter returns the index of the largest-|value| entry.
func TopCounter(importance []float64) int {
	best, bestV := 0, -1.0
	for j, v := range importance {
		if a := math.Abs(v); a > bestV {
			best, bestV = j, a
		}
	}
	return best
}
